"""Pair formation, existential validity, and phase-2 rules."""

import pytest

from repro.constraints.parser import parse_constraints
from repro.core.pairs import (
    form_valid_pairs,
    rules_from_pairs,
    split_constraints,
    valid_sets_existential,
)
from repro.db.domain import Domain
from repro.db.stats import OpCounters


@pytest.fixture
def domains(market_catalog):
    item = Domain.items(market_catalog)
    return {"S": item, "T": item}


@pytest.fixture
def sets():
    s_sets = {(1,): 7, (2,): 6, (1, 2): 5, (4,): 6}
    t_sets = {(4,): 6, (5,): 4, (4, 5): 3, (1,): 7}
    return s_sets, t_sets


def test_split_constraints():
    constraints = parse_constraints(
        ["max(S.Price) <= 40", "min(T.Price) >= 20", "S.Type = T.Type"]
    )
    onevar, twovar = split_constraints(constraints)
    assert set(onevar) == {"S", "T"}
    assert len(twovar) == 1


def test_form_valid_pairs_brute_force_agreement(domains, sets):
    from repro.constraints.evaluate import evaluate_all

    s_sets, t_sets = sets
    constraints = parse_constraints(
        ["max(S.Price) <= min(T.Price)", "S.Type = {snack}"]
    )
    pairs = form_valid_pairs(s_sets, t_sets, constraints, domains)
    expected = {
        (s0, t0)
        for s0 in s_sets
        for t0 in t_sets
        if evaluate_all(constraints, {"S": s0, "T": t0}, domains)
    }
    assert set(pairs) == expected


def test_form_valid_pairs_limit_and_counters(domains, sets):
    s_sets, t_sets = sets
    counters = OpCounters()
    constraints = parse_constraints(["max(S.Price) <= min(T.Price)"])
    pairs = form_valid_pairs(
        s_sets, t_sets, constraints, domains, counters=counters, limit=2
    )
    assert len(pairs) == 2
    assert counters.pair_checks > 0


def test_valid_sets_existential(domains, sets):
    s_sets, t_sets = sets
    constraints = parse_constraints(["max(S.Price) <= min(T.Price)"])
    survivors = valid_sets_existential(
        s_sets, t_sets, constraints, "S", "T", domains
    )
    # (4,) has price 40; the cheapest partner min is 10 via (1,) -> fails
    # against every partner? (1,) in t_sets has min 10 < 40; partner (4,)
    # min 40 >= 40 -> survives.
    assert (4,) in survivors
    assert (1, 2) in survivors


def test_valid_sets_existential_no_twovar_returns_own(domains, sets):
    s_sets, __ = sets
    constraints = parse_constraints(["S.Type = {snack}"])
    survivors = valid_sets_existential(s_sets, {}, constraints, "S", "T", domains)
    assert set(survivors) == {(1,), (2,), (1, 2)}


def test_rules_from_pairs(market_db):
    pairs = [((1,), (4,)), ((1, 2), (4,)), ((1,), (1, 2))]
    rules = rules_from_pairs(pairs, market_db)
    # Overlapping antecedent/consequent pairs are skipped.
    assert len(rules) == 2
    by_key = {(r.antecedent, r.consequent): r for r in rules}
    rule = by_key[((1,), (4,))]
    assert rule.support == pytest.approx(market_db.support((1, 4)) / len(market_db))
    assert rule.confidence == pytest.approx(
        market_db.support((1, 4)) / market_db.support((1,))
    )


def test_rules_min_confidence_filters(market_db):
    pairs = [((1,), (4,)), ((3,), (6,))]
    all_rules = rules_from_pairs(pairs, market_db, min_confidence=0.0)
    high = rules_from_pairs(pairs, market_db, min_confidence=0.9)
    assert len(high) <= len(all_rules)


def test_rules_str_is_readable(market_db):
    (rule,) = rules_from_pairs([((1,), (4,))], market_db)
    assert "=>" in str(rule)
