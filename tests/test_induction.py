"""Induced weaker constraints (Section 5.1, Figure 4)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.evaluate import evaluate_constraint
from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.induction import induce_weaker
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.errors import ClassificationError


def induced(text):
    return induce_weaker(TwoVarView.of(parse_constraint(text)))


# The three Figure 4 rows, verbatim.
@pytest.mark.parametrize(
    "original, weaker",
    [
        ("avg(S.A) <= min(T.B)", "min(S.A) <= min(T.B)"),
        ("sum(S.A) <= max(T.B)", "max(S.A) <= max(T.B)"),
        ("avg(S.A) <= avg(T.B)", "min(S.A) <= max(T.B)"),
    ],
)
def test_figure4_rows(original, weaker):
    result = induced(original)
    assert result.weaker is not None
    assert str(result.weaker.constraint) == str(parse_constraint(weaker))


def test_sum_on_greater_side_induces_no_minmax_weakening():
    result = induced("sum(S.A) <= sum(T.B)")
    assert result.weaker is None
    assert result.sum_side_var == "T"
    assert result.sum_side_attr == "B"
    assert result.pruned_var == "S"
    assert result.pruned_func == "sum"


def test_avg_vs_sum_combination():
    result = induced("avg(S.A) <= sum(T.B)")
    assert result.weaker is None  # sum on the greater side
    assert result.sum_side_var == "T"
    assert result.pruned_func == "avg"


def test_ge_orientation_is_flipped_before_induction():
    result = induced("sum(T.B) >= avg(S.A)")
    assert result.pruned_var == "S"
    assert result.sum_side_var == "T"


def test_strictness_recorded():
    assert induced("sum(S.A) < max(T.B)").strict
    assert not induced("sum(S.A) <= max(T.B)").strict


def test_ne_induces_nothing():
    result = induced("sum(S.A) != sum(T.B)")
    assert result.weaker is None and result.sum_side_var is None


def test_count_rejected_politely():
    result = induced("count(S.A) <= sum(T.B)")
    assert result.weaker is None and result.pruned_var is None


def test_quasi_succinct_input_rejected():
    with pytest.raises(ClassificationError):
        induced("max(S.A) <= min(T.B)")


def test_non_aggregate_input_rejected():
    with pytest.raises(ClassificationError):
        induced("S.A ⊆ T.B")


@settings(max_examples=50, deadline=None)
@given(
    s_values=st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=5),
    t_values=st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=5),
    text=st.sampled_from(
        [
            "avg(S.A) <= min(T.B)",
            "sum(S.A) <= max(T.B)",
            "avg(S.A) <= avg(T.B)",
            "avg(S.A) >= max(T.B)",
            "sum(S.A) >= min(T.B)",
        ]
    ),
)
def test_weaker_is_implied_by_original_on_non_negative_data(
    s_values, t_values, text
):
    """Figure 4's defining property: C(S0,T0) implies C'(S0,T0) pointwise
    over non-negative domains."""
    result = induced(text)
    if result.weaker is None:
        return
    s_catalog = ItemCatalog({"A": {i: v for i, v in enumerate(s_values)}})
    t_catalog = ItemCatalog({"B": {100 + i: v for i, v in enumerate(t_values)}})
    domains = {"S": Domain.items(s_catalog), "T": Domain.items(t_catalog)}
    original = result.original.constraint
    weaker = result.weaker.constraint
    for sk in (1, 2):
        for s0 in combinations(domains["S"].elements, sk):
            for tk in (1, 2):
                for t0 in combinations(domains["T"].elements, tk):
                    bindings = {"S": s0, "T": t0}
                    if evaluate_constraint(original, bindings, domains):
                        assert evaluate_constraint(weaker, bindings, domains), (
                            text, s0, t0,
                        )
