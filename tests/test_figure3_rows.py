"""Figure 3's four explicit rows, transcribed and checked verbatim.

The general min/max reduction rule is tested in ``test_reduction``; this
file pins the *specific* table entries the paper prints, including the
regularities its proof commentary points out (identical C1 for the
max-left rows, identical C2 for rows sharing the right aggregate's
direction).
"""

import pytest

from repro.constraints.ast import CmpOp
from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.reduction import reduce_twovar
from repro.datagen.tiny import tiny_scenario


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario(11, n_s=5, n_t=5)


def reduce_row(text, scenario):
    view = TwoVarView.of(parse_constraint(text))
    return reduce_twovar(
        view, scenario.domains, {"S": scenario.l1("S"), "T": scenario.l1("T")}
    )


def bounds(scenario):
    t_values = scenario.domains["T"].catalog.project(scenario.l1("T"), "B")
    s_values = scenario.domains["S"].catalog.project(scenario.l1("S"), "A")
    return max(t_values), min(s_values)


# Figure 3 verbatim: (2-var constraint, C1 func+op, C2 func+op, C2 const kind)
ROWS = [
    # min(S.A) <= min(T.B): C1 min <= max(L1T.B); C2 min >= min(L1S.A)
    ("min(S.A) <= min(T.B)", ("min", CmpOp.LE), ("min", CmpOp.GE)),
    # min(S.A) <= max(T.B): C1 min <= max(L1T.B); C2 max >= min(L1S.A)
    ("min(S.A) <= max(T.B)", ("min", CmpOp.LE), ("max", CmpOp.GE)),
    # max(S.A) <= min(T.B): C1 max <= max(L1T.B); C2 min >= min(L1S.A)
    ("max(S.A) <= min(T.B)", ("max", CmpOp.LE), ("min", CmpOp.GE)),
    # max(S.A) <= max(T.B): C1 max <= max(L1T.B); C2 max >= min(L1S.A)
    ("max(S.A) <= max(T.B)", ("max", CmpOp.LE), ("max", CmpOp.GE)),
]


@pytest.mark.parametrize("text, c1_shape, c2_shape", ROWS)
def test_figure3_row(text, c1_shape, c2_shape, scenario):
    max_b, min_a = bounds(scenario)
    reduced = reduce_row(text, scenario)
    (c1,) = reduced["S"]
    (c2,) = reduced["T"]
    assert (c1.left.func, c1.op) == c1_shape, text
    assert c1.right.value == max_b, text  # the constant is max(L1T.B)
    assert (c2.left.func, c2.op) == c2_shape, text
    assert c2.right.value == min_a, text  # the constant is min(L1S.A)


def test_figure3_regularity_c1_identical_for_max_rows(scenario):
    """The paper's observation: C1 is identical in the third and fourth
    rows (and in the first and second), because only the left aggregate
    matters for C1."""
    rows = [reduce_row(text, scenario)["S"][0] for text, __, __ in ROWS]
    assert rows[0] == rows[1]
    assert rows[2] == rows[3]
    assert rows[0] != rows[2]


def test_figure3_regularity_c2_pairs(scenario):
    """C2 depends only on the right aggregate: rows 1/3 share min(CT.B),
    rows 2/4 share max(CT.B)."""
    rows = [reduce_row(text, scenario)["T"][0] for text, __, __ in ROWS]
    assert rows[0] == rows[2]
    assert rows[1] == rows[3]
    assert rows[0] != rows[1]
