"""The Figure 7 optimizer: planning decisions and result surface."""

import pytest

from repro.core.optimizer import CFQOptimizer, mine_cfq
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=300)


def plan_for(workload, constraints):
    cfq = CFQ(domains=workload.domains, minsup=0.03, constraints=constraints)
    return CFQOptimizer(cfq).plan(workload.db)


def test_quasi_succinct_goes_to_reduction(workload):
    plan = plan_for(workload, ["max(S.Price) <= min(T.Price)"])
    assert len(plan.reductions) == 1
    assert plan.reductions[0].induced_from is None
    assert not plan.jmax


def test_sum_constraint_gets_jmax_and_no_reduction(workload):
    plan = plan_for(workload, ["sum(S.Price) <= sum(T.Price)"])
    assert not plan.reductions  # sum on the greater side induces nothing 2-var
    assert len(plan.jmax) == 1
    jplan = plan.jmax[0]
    assert jplan.bound_var == "T" and jplan.pruned_var == "S"
    assert jplan.bound_kind == "sum" and jplan.pruned_func == "sum"


def test_sum_vs_max_gets_both_induced_reduction_and_jmax_none(workload):
    plan = plan_for(workload, ["sum(S.Price) <= max(T.Price)"])
    assert len(plan.reductions) == 1
    assert plan.reductions[0].induced_from is not None
    assert str(plan.reductions[0].view.constraint).startswith("max(S.Price)")
    assert not plan.jmax  # greater side is max, no series needed


def test_avg_vs_avg_gets_induced_reduction_and_avg_series(workload):
    plan = plan_for(workload, ["avg(S.Price) <= avg(T.Price)"])
    assert len(plan.reductions) == 1
    assert plan.jmax and plan.jmax[0].bound_kind == "avg"
    assert plan.jmax[0].pruned_func == "avg"


def test_ge_orientation_swaps_sides(workload):
    plan = plan_for(workload, ["sum(T.Price) >= sum(S.Price)"])
    (jplan,) = plan.jmax
    assert jplan.bound_var == "T" and jplan.pruned_var == "S"


def test_negative_domain_disables_section5(workload):
    catalog = ItemCatalog({"Price": {1: -5, 2: 10, 3: 20}})
    item = Domain.items(catalog)
    cfq = CFQ(
        domains={"S": item, "T": item},
        minsup=0.2,
        constraints=["sum(S.Price) <= sum(T.Price)"],
    )
    db = TransactionDatabase([(1, 2), (2, 3), (1, 3), (1, 2, 3)])
    plan = CFQOptimizer(cfq).plan(db)
    assert not plan.jmax and not plan.reductions
    assert any("negative" in note for note in plan.notes)
    # And execution still answers correctly via pair-time verification.
    result = CFQOptimizer(cfq).execute(db)
    from repro.mining.aprioriplus import apriori_plus

    assert set(result.pairs()) == set(apriori_plus(db, cfq).pairs())


def test_onevar_constraints_land_in_var_plans(workload):
    plan = plan_for(
        workload, ["max(S.Price) <= 100", "S.Type = {snacks}", "min(T.Price) >= 20"]
    )
    assert len(plan.var_plans["S"].base_constraints) == 2
    assert len(plan.var_plans["T"].base_constraints) == 1


def test_explain_mentions_all_parts(workload):
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.03,
        constraints=["S.Type = {snacks}", "max(S.Price) <= min(T.Price)",
                     "sum(S.Price) <= sum(T.Price)"],
    )
    result = CFQOptimizer(cfq).execute(workload.db)
    text = result.explain()
    assert "push 1-var" in text
    assert "reduce after level 1" in text
    assert "iterative pruning" in text
    assert "operation counts" in text
    assert "bound series" in text


def test_mine_cfq_convenience(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.05,
              constraints=["S.Type = T.Type"])
    result = mine_cfq(workload.db, cfq)
    assert result.pairs(limit=3)


def test_valid_sets_are_subset_of_frequent_valid(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.03,
              constraints=["max(S.Price) <= min(T.Price)"])
    result = mine_cfq(workload.db, cfq)
    for var in ("S", "T"):
        assert set(result.valid_sets(var)) <= set(result.frequent_valid(var))


def test_pairs_limit(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.05, constraints=[])
    result = mine_cfq(workload.db, cfq)
    assert len(result.pairs(limit=7)) == 7


def test_rules_have_consistent_measures(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.05,
              constraints=["S.Type = {snacks}", "T.Type = {beers}"])
    result = mine_cfq(workload.db, cfq)
    rules = result.rules(workload.db, min_confidence=0.0)
    for rule in rules[:20]:
        assert 0.0 <= rule.support <= 1.0
        assert 0.0 <= rule.confidence <= 1.0
        joint = workload.db.support(tuple(sorted(set(rule.antecedent)
                                                 | set(rule.consequent))))
        assert rule.support == pytest.approx(joint / len(workload.db))
