"""Unit tests for the constraint DSL parser."""

import pytest

from repro.constraints.ast import (
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Const,
    SetComparison,
    SetConst,
    SetOp,
)
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.errors import ConstraintSyntaxError


def test_agg_vs_agg():
    constraint = parse_constraint("max(S.Price) <= min(T.Price)")
    assert constraint == Comparison(
        Agg("max", AttrRef("S", "Price")), CmpOp.LE, Agg("min", AttrRef("T", "Price"))
    )


def test_agg_vs_const():
    constraint = parse_constraint("sum(S.Price) <= 100")
    assert constraint == Comparison(
        Agg("sum", AttrRef("S", "Price")), CmpOp.LE, Const(100)
    )


def test_const_vs_agg():
    constraint = parse_constraint("200 <= avg(T.Price)")
    assert constraint == Comparison(
        Const(200), CmpOp.LE, Agg("avg", AttrRef("T", "Price"))
    )


def test_float_and_negative_constants():
    assert parse_constraint("avg(S.A) >= 1.5").right == Const(1.5)
    assert parse_constraint("min(S.A) >= -3").right == Const(-3)


def test_count_distinct():
    constraint = parse_constraint("count(S.Type) = 1")
    assert constraint == Comparison(
        Agg("count", AttrRef("S", "Type")), CmpOp.EQ, Const(1)
    )


def test_count_of_bare_variable():
    constraint = parse_constraint("count(S) <= 4")
    assert constraint.left == Agg("count", AttrRef("S", None))


def test_set_equality_with_literal():
    constraint = parse_constraint("S.Type = {Snacks}")
    assert constraint == SetComparison(
        AttrRef("S", "Type"), SetOp.SETEQ, SetConst(frozenset({"Snacks"}))
    )


def test_set_literal_kinds():
    constraint = parse_constraint('S.Type = {Snacks, "Dried Fruit", 42}')
    assert constraint.right == SetConst(frozenset({"Snacks", "Dried Fruit", 42}))


def test_empty_set_literal():
    constraint = parse_constraint("S.Type = {}")
    assert constraint.right == SetConst(frozenset())


def test_set_inequality_between_vars():
    constraint = parse_constraint("S.Type != T.Type")
    assert constraint.op is SetOp.SETNEQ


@pytest.mark.parametrize(
    "text, op",
    [
        ("S.A subset T.B", SetOp.SUBSET),
        ("S.A ⊆ T.B", SetOp.SUBSET),
        ("S.A not subset T.B", SetOp.NOT_SUBSET),
        ("S.A ⊄ T.B", SetOp.NOT_SUBSET),
        ("S.A superset T.B", SetOp.SUPERSET),
        ("S.A ⊇ T.B", SetOp.SUPERSET),
        ("S.A not superset T.B", SetOp.NOT_SUPERSET),
        ("S.A ⊉ T.B", SetOp.NOT_SUPERSET),
    ],
)
def test_subset_family(text, op):
    constraint = parse_constraint(text)
    assert constraint.op is op
    assert constraint.left == AttrRef("S", "A")
    assert constraint.right == AttrRef("T", "B")


@pytest.mark.parametrize(
    "text",
    ["S.A ∩ T.B = ∅", "S.A ∩ T.B = {}", "disjoint(S.A, T.B)"],
)
def test_disjoint_spellings(text):
    assert parse_constraint(text).op is SetOp.DISJOINT


@pytest.mark.parametrize(
    "text",
    ["S.A ∩ T.B != ∅", "overlaps(S.A, T.B)", "intersects(S.A, T.B)"],
)
def test_overlap_spellings(text):
    assert parse_constraint(text).op is SetOp.OVERLAPS


def test_bare_variable_reference():
    constraint = parse_constraint("S.Type ⊆ T")
    assert constraint.right == AttrRef("T", None)


def test_unicode_comparison_operators():
    assert parse_constraint("min(S.A) ≤ 5").op is CmpOp.LE
    assert parse_constraint("min(S.A) ≥ 5").op is CmpOp.GE
    assert parse_constraint("min(S.A) ≠ 5").op is CmpOp.NE


def test_parse_constraints_mixes_text_and_ast():
    prebuilt = parse_constraint("sum(S.A) <= 1")
    out = parse_constraints(["min(T.B) >= 2", prebuilt])
    assert out[1] is prebuilt
    assert isinstance(out[0], Comparison)


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "max(S.Price",
        "max(S.Price) <=",
        "S.A <=> T.B",
        "S.A subset 5",
        "{1,2} <= 5",
        "min(S.A) <= max(T.B) extra",
        "sum(S.A) = {1}",
        "S.A ∩ T.B = 5",
        "min({1,2}) <= 5",
        "S.A = {1,",
        "100 <= 200",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(Exception) as excinfo:
        parse_constraint(bad)
    assert excinfo.type.__name__ in ("ConstraintSyntaxError", "ConstraintTypeError")


def test_syntax_error_carries_position():
    with pytest.raises(ConstraintSyntaxError) as excinfo:
        parse_constraint("max(S.Price) <= $$$")
    assert "^" in str(excinfo.value)


def test_ordering_op_between_sets_rejected():
    with pytest.raises(ConstraintSyntaxError):
        parse_constraint("S.A <= T.B")
