"""Admission control: token buckets, tenant budgets, shedding, errors.

Unit-level pins for :mod:`repro.serve.admission` plus the server-side
admission pipeline ordering (tenant → rate limit → bounded queue →
parse), all on injected clocks so every refill boundary is exact.
"""

import json
import threading

import pytest

from repro.errors import ExecutionError
from repro.datagen.workloads import quickstart_workload
from repro.runtime.faults import FaultPlan
from repro.serve import (
    ERROR_SCHEMA,
    QueryServer,
    QueryService,
    TenantProfile,
    TenantRegistry,
    TokenBucket,
    error_body,
    validate_error_body,
)

WORKLOAD = quickstart_workload(n_transactions=120)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# TokenBucket refill boundaries
# ----------------------------------------------------------------------
def test_bucket_starts_full_and_spends_to_empty():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
    assert [bucket.allow() for _ in range(4)] == [True, True, True, False]
    assert bucket.retry_after() == pytest.approx(1.0)


def test_bucket_refills_continuously_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    assert bucket.allow() and bucket.allow()
    assert not bucket.allow()
    clock.now += 0.499  # 0.998 tokens: one short of a whole token
    assert not bucket.allow()
    clock.now += 0.002  # crosses 1.0
    assert bucket.allow()
    assert not bucket.allow()


def test_bucket_never_overfills_past_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
    clock.now += 1000.0
    assert bucket.tokens == pytest.approx(2.0)
    assert [bucket.allow() for _ in range(3)] == [True, True, False]


def test_zero_burst_bucket_never_admits():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=0, clock=clock)
    assert not bucket.allow()
    clock.now += 1e6
    assert not bucket.allow()
    # A cost above capacity can never be satisfied: no retry hint.
    assert bucket.retry_after() is None


def test_zero_rate_bucket_is_burst_only():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.0, burst=1, clock=clock)
    assert bucket.allow()
    clock.now += 1e6
    assert not bucket.allow()
    assert bucket.retry_after() is None  # suspended tenant: never retry


def test_negative_parameters_rejected():
    with pytest.raises(ExecutionError):
        TokenBucket(rate=-1.0, burst=1)
    with pytest.raises(ExecutionError):
        TokenBucket(rate=1.0, burst=-1)


def test_backwards_clock_keeps_tokens_and_never_double_credits():
    clock = FakeClock(now=100.0)
    bucket = TokenBucket(rate=1.0, burst=5, clock=clock)
    assert bucket.allow()  # 4 left
    clock.now = 40.0  # clock went backwards 60s
    assert bucket.tokens == pytest.approx(4.0)  # kept, not un-refilled
    # The anchor moved to 40: recovering to 100 must NOT credit 60s of
    # refill twice — only forward motion from the new anchor counts.
    clock.now = 41.0
    assert bucket.tokens == pytest.approx(5.0)


def test_fault_plan_clock_jump_refills_deterministically():
    clock = FakeClock()
    # Reads: 1 = constructor anchor, 2-3 = the draining allows, 4 = the
    # jump (after=3 skips the first three), all deterministic by plan.
    plan = FaultPlan().add("clock", "clock_jump", times=1, after=3,
                           jump_seconds=60.0)
    bucket = TokenBucket(rate=1.0, burst=2, clock=plan.wrap_clock(clock))
    assert bucket.allow() and bucket.allow()  # drains the burst
    # The jump lands on the next refill: back to burst, spends down.
    assert bucket.allow() and bucket.allow()
    assert not bucket.allow()


def test_bucket_allow_is_atomic_under_threads():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.0, burst=200, clock=clock)
    admitted = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        admitted.append(sum(bucket.allow() for _ in range(100)))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(admitted) == 200  # exactly burst, no over-admission


# ----------------------------------------------------------------------
# TenantProfile → RunGuard budgets
# ----------------------------------------------------------------------
def test_profile_budgets_map_onto_runguard():
    profile = TenantProfile(
        name="t", deadline_seconds=5.0, max_memory_mb=64.0,
        max_candidates=1000,
    )
    guard = profile.guard()
    assert guard is not None
    assert guard.deadline_seconds == 5.0
    assert guard.max_memory_mb == 64.0
    assert guard.max_candidates == 1000
    # A fresh guard per call: budgets never leak between runs.
    assert profile.guard() is not guard


def test_budgetless_profile_runs_unguarded():
    assert TenantProfile(name="t").guard() is None


def test_profile_from_dict_rejects_unknown_and_invalid_keys():
    with pytest.raises(ExecutionError):
        TenantProfile.from_dict("t", {"rate": 1, "qps": 5})
    with pytest.raises(ExecutionError):  # invalid budget fails at load
        TenantProfile.from_dict("t", {"deadline_seconds": -1})
    with pytest.raises(ExecutionError):
        TenantProfile.from_dict("t", {"rate": -3})


def test_registry_round_trips_tenants_json(tmp_path):
    path = tmp_path / "tenants.json"
    path.write_text(json.dumps({
        "tenants": {
            "alice": {"rate": 5, "burst": 10, "deadline_seconds": 2},
            "default": {"rate": 1, "burst": 1},
        }
    }))
    registry = TenantRegistry.load(str(path), clock=FakeClock())
    assert registry.resolve("alice").deadline_seconds == 2
    assert registry.resolve("stranger").name == "default"
    # Unknown tenants share ONE default bucket: minting names must not
    # mint rate-limit capacity.
    assert registry.bucket("stranger") is registry.bucket("other-stranger")
    assert registry.bucket("alice") is not registry.bucket("stranger")


def test_registry_without_default_rejects_unknown_tenants():
    registry = TenantRegistry({"a": TenantProfile(name="a")})
    assert registry.resolve("b") is None
    assert registry.bucket("b") is None


# ----------------------------------------------------------------------
# Error bodies
# ----------------------------------------------------------------------
def test_error_body_round_trips_through_json():
    body = error_body(429, "rate_limit", "slow down", tenant="t",
                      retry_after_seconds=1.25)
    parsed = json.loads(json.dumps(body))
    validate_error_body(parsed)
    assert parsed["schema"] == ERROR_SCHEMA
    assert parsed["status"] == 429
    assert parsed["retry_after_seconds"] == 1.25


def test_error_body_rejects_unknown_codes():
    with pytest.raises(ExecutionError):
        error_body(500, "kaboom", "nope")


@pytest.mark.parametrize("mutation", [
    {"schema": "other"},
    {"version": 99},
    {"status": 200},
    {"code": "kaboom"},
    {"message": 7},
    {"retry_after_seconds": -1},
])
def test_validate_error_body_rejects_malformed(mutation):
    body = error_body(503, "queue_full", "busy")
    body.update(mutation)
    with pytest.raises(ExecutionError):
        validate_error_body(body)


# ----------------------------------------------------------------------
# The server-side admission pipeline
# ----------------------------------------------------------------------
def _core(registry=None, **overrides):
    options = {"window_seconds": 0.0}
    options.update(overrides)
    return QueryServer(
        QueryService(telemetry=True),
        WORKLOAD.db,
        WORKLOAD.domains,
        tenants=registry,
        **options,
    )


def _query(tenant="t"):
    return {"query": str(WORKLOAD.cfq()), "minsup": 0.05, "tenant": tenant}


def test_rate_limited_request_gets_429_with_retry_hint():
    clock = FakeClock()
    registry = TenantRegistry(
        {"t": TenantProfile(name="t", rate=1.0, burst=1)}, clock=clock
    )
    core = _core(registry, clock=clock)
    status, _ = core.handle_query(_query())
    assert status == 200
    status, body = core.handle_query(_query())
    assert status == 429
    validate_error_body(body)
    assert body["code"] == "rate_limit"
    assert body["retry_after_seconds"] == pytest.approx(1.0)
    clock.now += 1.0  # the hint was honest: waiting it out re-admits
    status, _ = core.handle_query(_query())
    assert status == 200
    rejections = core.service.telemetry.metrics.counter(
        "server_rejections", tenant="t", reason="rate_limit"
    )
    assert rejections == 1


def test_unknown_tenant_gets_403():
    registry = TenantRegistry({"a": TenantProfile(name="a")})
    core = _core(registry)
    status, body = core.handle_query(_query(tenant="b"))
    assert status == 403
    validate_error_body(body)
    assert body["code"] == "unknown_tenant"


def test_full_queue_sheds_with_503_before_any_parse_work():
    core = _core(queue_limit=1)
    release = threading.Event()
    entered = threading.Event()

    def slow_execute(*args, **kwargs):
        entered.set()
        if not release.wait(10):
            raise AssertionError("never released")
        raise RuntimeError("not reached in this test")

    core.service.execute = slow_execute
    holder_result = {}

    def holder():
        holder_result["response"] = core.handle_query(_query())

    thread = threading.Thread(target=holder)
    thread.start()
    assert entered.wait(10)
    # Queue slot is held by the in-flight query; next arrival is shed —
    # even a *malformed* one is shed before parsing spends any work.
    status, body = core.handle_query({"query": "((garbage", "tenant": "t"})
    assert status == 503
    validate_error_body(body)
    assert body["code"] == "queue_full"
    sheds = core.service.telemetry.metrics.counter("server_sheds", tenant="t")
    assert sheds == 1
    release.set()
    thread.join(timeout=10)
    assert holder_result["response"][0] == 500  # the gated run's failure
    # Slot released: admission works again (400 now — it parses).
    status, body = core.handle_query({"query": "((garbage", "tenant": "t"})
    assert status == 400
    assert body["code"] == "bad_request"


@pytest.mark.parametrize("payload,fragment", [
    ("not a dict", "JSON object"),
    ({"tenant": "t"}, "query"),
    ({"query": 7, "tenant": "t"}, "query"),
    ({"query": "{(S) | freq(S)}", "minsup": 2.0, "tenant": "t"}, "minsup"),
    ({"query": "{(S) | freq(S)}", "tenant": "t", "extra": 1}, "unknown"),
    ({"query": "{(S) | freq(S)}", "tenant": "t",
      "options": {"bogus": True}}, "bogus"),
    ({"query": "SELECT *", "tenant": "t"}, ""),
])
def test_malformed_requests_get_schemad_400s(payload, fragment):
    core = _core()
    status, body = core.handle_query(payload)
    assert status == 400
    validate_error_body(json.loads(json.dumps(body)))
    assert fragment in body["message"]


def test_queue_depth_gauge_tracks_admissions():
    core = _core()
    status, _ = core.handle_query(_query())
    assert status == 200
    assert core.queue_depth == 0
    assert core.service.telemetry.metrics.gauge("server_queue_depth") == 0
