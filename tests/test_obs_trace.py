"""The span tracer and metrics registry (repro.obs.trace / .metrics)."""

import json

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Tracer, resolve_tracer
from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload


def test_span_nesting_and_attributes():
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner", n=1) as inner:
            inner.set(m=2)
            tracer.event("tick", at=3)
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert outer.attributes == {"kind": "test"}
    assert [c.name for c in outer.children] == ["inner"]
    inner = outer.children[0]
    assert inner.attributes == {"n": 1, "m": 2}
    assert inner.events == [{"name": "tick", "at": 3}]


def test_span_timing_monotone():
    tracer = Tracer()
    with tracer.span("work"):
        sum(range(10000))
    span = tracer.roots[0]
    assert span.wall_seconds >= 0.0
    assert span.cpu_seconds >= 0.0
    assert span.end_wall >= span.start_wall


def test_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    assert [c.name for c in tracer.roots[0].children] == ["a", "b"]


def test_walk_and_find():
    tracer = Tracer()
    with tracer.span("run"):
        for level in (1, 2, 3):
            with tracer.span("level", level=level):
                pass
    assert [s.name for s in tracer.walk()] == ["run", "level", "level", "level"]
    assert len(tracer.find("level")) == 3
    assert len(tracer.find("level", lambda s: s.attributes["level"] > 1)) == 2


def test_to_dict_is_json_serializable():
    tracer = Tracer()
    with tracer.span("run", flag=True):
        tracer.annotate(note="hello")
        with tracer.span("child"):
            tracer.event("evt", x=1)
    document = tracer.to_dict()
    text = json.dumps(document)
    parsed = json.loads(text)
    root = parsed["spans"][0]
    assert root["name"] == "run"
    assert root["attributes"] == {"flag": True, "note": "hello"}
    assert root["children"][0]["events"] == [{"name": "evt", "x": 1}]


def test_null_tracer_is_inert_and_reusable():
    handle = NULL_TRACER.span("anything", big=list(range(10)))
    with handle as span:
        assert span is NULL_SPAN
        span.set(ignored=1)
        span.add_event("ignored")
    # Attributes never accumulate on the shared null span.
    assert NULL_SPAN.attributes == {}
    assert NULL_SPAN.events == []
    assert NULL_TRACER.to_dict() == {"spans": []}
    assert NULL_TRACER.find("anything") == []
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.metrics is NULL_METRICS


def test_resolve_tracer():
    tracer = Tracer()
    assert resolve_tracer(None) is NULL_TRACER
    assert resolve_tracer(tracer) is tracer


def test_metrics_registry_counters_gauges_histograms():
    metrics = MetricsRegistry()
    metrics.inc("candidates", 5, var="S")
    metrics.inc("candidates", 3, var="S")
    metrics.inc("candidates", 2, var="T")
    metrics.set_gauge("bound", 12.5, source="c1")
    metrics.observe("shard_seconds", 0.25)
    metrics.observe("shard_seconds", 0.75)
    assert metrics.counter("candidates", var="S") == 8
    assert metrics.counter("candidates", var="T") == 2
    assert metrics.gauge("bound", source="c1") == 12.5
    hist = metrics.histogram("shard_seconds")
    assert hist.count == 2
    assert hist.mean == 0.5
    assert hist.min == 0.25 and hist.max == 0.75
    document = metrics.as_dict()
    assert document["counters"]["candidates{var=S}"] == 8
    assert json.dumps(document)  # serializable


def test_null_metrics_inert():
    NULL_METRICS.inc("x", 5)
    NULL_METRICS.set_gauge("y", 1.0)
    NULL_METRICS.observe("z", 2.0)
    assert NULL_METRICS.as_dict() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }


def test_optimizer_trace_tree_shape():
    """An end-to-end run produces the documented span hierarchy: one
    optimizer.execute root containing the plan and the dovetail run,
    with level spans in ascending level order per variable."""
    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    tracer = Tracer()
    CFQOptimizer(cfq).execute(workload.db, tracer=tracer)
    assert [r.name for r in tracer.roots] == ["optimizer.execute"]
    root = tracer.roots[0]
    child_names = [c.name for c in root.children]
    assert child_names[0] == "optimizer.plan"
    assert "dovetail.run" in child_names
    levels = tracer.find("level")
    assert levels, "mining must record level spans"
    per_var = {}
    for span in levels:
        attrs = span.attributes
        assert {"var", "level", "candidates_in", "frequent_out",
                "pruned"} <= set(attrs)
        per_var.setdefault(attrs["var"], []).append(attrs["level"])
    for var, level_seq in per_var.items():
        assert level_seq == sorted(level_seq), (
            f"levels of {var} out of order: {level_seq}"
        )
        assert level_seq[0] == 1
    # The metrics registry saw the same candidate totals.
    for var, level_seq in per_var.items():
        counted = sum(
            s.attributes["candidates_in"]
            for s in levels if s.attributes["var"] == var
        )
        assert tracer.metrics.counter("candidates_counted", var=var) == counted
