"""Iterated (fixpoint) quasi-succinct reduction — the extension ablation."""

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.datagen.workloads import fig8b_workload, quickstart_workload
from repro.errors import ExecutionError
from repro.mining.aprioriplus import apriori_plus


@pytest.fixture(scope="module")
def workload():
    return fig8b_workload(30.0, n_items=150, n_transactions=400)


def test_iterated_reduction_preserves_answers(workload):
    cfq = workload.cfq()
    single = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=1)
    iterated = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=4)
    baseline = apriori_plus(workload.db, cfq)
    expected = set(baseline.pairs())
    assert set(single.pairs()) == expected
    assert set(iterated.pairs()) == expected


def test_iterated_reduction_never_counts_more(workload):
    cfq = workload.cfq()
    single = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=1)
    iterated = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=4)
    assert iterated.counters.total_counted <= single.counters.total_counted


def test_iteration_reaches_fixpoint_quickly(workload):
    cfq = workload.cfq()
    four = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=4)
    many = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=10)
    assert four.counters.total_counted == many.counters.total_counted


def test_cascade_workload_shows_strict_improvement():
    """The dedicated cascade: a type group eliminable only once the price
    reduction's effect on the other side's L1 has propagated — round 1
    cannot see it, the fixpoint must."""
    from repro.datagen.workloads import cascade_workload

    workload = cascade_workload(n_group=60, n_transactions=800)
    cfq = workload.cfq()
    one = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=1)
    fixpoint = CFQOptimizer(cfq).execute(workload.db, reduction_rounds=4)
    baseline = apriori_plus(workload.db, cfq)
    assert set(one.pairs()) == set(fixpoint.pairs()) == set(baseline.pairs())
    assert fixpoint.counters.total_counted < one.counters.total_counted


def test_rounds_validated():
    workload = quickstart_workload(n_transactions=100)
    cfq = workload.cfq()
    with pytest.raises(ExecutionError):
        CFQOptimizer(cfq).execute(workload.db, reduction_rounds=0)
