"""Parser robustness: round-trips and garbage rejection under fuzzing."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.parser import parse_constraint
from repro.errors import ReproError

identifiers = st.text(
    alphabet=string.ascii_letters + "_", min_size=1, max_size=8
).filter(lambda s: s.lower() not in (
    "min", "max", "sum", "avg", "count", "not", "subset", "superset",
    "disjoint", "overlaps", "intersects", "empty",
))


@settings(max_examples=80, deadline=None)
@given(
    func=st.sampled_from(["min", "max", "sum", "avg"]),
    var=st.sampled_from(["S", "T"]),
    attr=identifiers,
    op=st.sampled_from(["<=", "<", ">=", ">", "=", "!="]),
    const=st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                  allow_infinity=False).map(lambda x: round(x, 3)),
    ),
)
def test_aggregate_comparisons_round_trip(func, var, attr, op, const):
    text = f"{func}({var}.{attr}) {op} {const}"
    constraint = parse_constraint(text)
    again = parse_constraint(str(constraint))
    assert again == constraint


@settings(max_examples=60, deadline=None)
@given(
    values=st.sets(
        st.one_of(identifiers, st.integers(min_value=0, max_value=99)),
        min_size=0,
        max_size=4,
    ),
    op_text=st.sampled_from(["=", "!=", "⊆", "⊇", "⊄", "⊉"]),
)
def test_set_literal_round_trip(values, op_text):
    literal = "{" + ", ".join(
        str(v) if isinstance(v, int) else v for v in sorted(values, key=str)
    ) + "}"
    constraint = parse_constraint(f"S.Type {op_text} {literal}")
    again = parse_constraint(str(constraint))
    assert again == constraint


@settings(max_examples=120, deadline=None)
@given(st.text(max_size=40))
def test_garbage_never_crashes_with_foreign_exceptions(text):
    """Arbitrary input either parses or raises a library error — never an
    uncontrolled exception type."""
    try:
        parse_constraint(text)
    except ReproError:
        pass
