"""Unit tests for the ccc operation counters."""

import pytest

from repro.db.stats import (
    CostWeights,
    OpCounters,
    ParallelStats,
    ScanStats,
    merge_shard_counters,
)


def test_record_counted_accumulates():
    counters = OpCounters()
    counters.record_counted("S", 2, 10)
    counters.record_counted("S", 2, 5)
    counters.record_counted("T", 1, 7)
    assert counters.support_counted[("S", 2)] == 15
    assert counters.total_counted == 22
    assert counters.counted_for("S") == 15
    assert counters.counted_by_level("S") == {2: 15}


def test_record_check_splits_by_size():
    counters = OpCounters()
    counters.record_check(1, 4)
    counters.record_check(3)
    assert counters.constraint_checks_singleton == 4
    assert counters.constraint_checks_larger == 1
    assert counters.total_checks == 5


def test_record_scan():
    counters = OpCounters()
    counters.record_scan(100)
    counters.record_scan(50)
    assert counters.scans == 2
    assert counters.tuples_read == 150


def test_cost_is_weighted_sum():
    counters = OpCounters()
    counters.subset_tests = 10
    counters.record_counted("S", 1, 2)
    counters.record_check(1, 3)
    counters.record_scan(4)
    weights = CostWeights(subset_test=1, counted_set=5, check=1, tuple_read=0.5)
    assert counters.cost(weights) == 10 + 2 * 5 + 3 + 4 * 0.5


def test_merged_adds_everything():
    a = OpCounters()
    a.record_counted("S", 1, 2)
    a.record_check(2)
    a.record_scan(10)
    b = OpCounters()
    b.record_counted("S", 1, 3)
    b.record_counted("T", 2, 1)
    b.pair_checks = 4
    merged = a.merged(b)
    assert merged.support_counted[("S", 1)] == 5
    assert merged.support_counted[("T", 2)] == 1
    assert merged.constraint_checks_larger == 1
    assert merged.tuples_read == 10
    assert merged.pair_checks == 4
    # Originals untouched.
    assert a.support_counted[("S", 1)] == 2


def test_as_dict_keys():
    summary = OpCounters().as_dict()
    assert {"sets_counted", "scans", "cost"} <= set(summary)


def test_scan_stats_merged():
    merged = ScanStats(1, 10).merged(ScanStats(2, 5))
    assert merged.scans == 3
    assert merged.tuples_read == 15


def _shard_counters(work: int) -> OpCounters:
    counters = OpCounters()
    counters.record_counted("S", 2, 10)
    counters.subset_tests = work
    return counters


def test_merge_shard_counters_sums_work_once_ledger():
    merged = merge_shard_counters([_shard_counters(7), _shard_counters(5)])
    assert merged.subset_tests == 12
    # The candidate ledger is NOT summed: both shards counted the same sets.
    assert merged.support_counted == {("S", 2): 10}


def test_merge_shard_counters_rejects_disagreeing_ledgers():
    other = OpCounters()
    other.record_counted("S", 2, 3)
    with pytest.raises(ValueError):
        merge_shard_counters([_shard_counters(1), other])


def test_parallel_stats_accumulates():
    stats = ParallelStats()
    stats.record_level([10, 10], [0.2, 0.4], 0.05, in_process=False)
    stats.record_level([20], [0.1], 0.0, in_process=True)
    assert stats.total_shard_seconds == pytest.approx(0.7)
    assert stats.total_merge_seconds == pytest.approx(0.05)
    # Critical path: slowest shard plus merge, per level.
    assert stats.total_span_seconds == pytest.approx(0.45 + 0.1)
    summary = stats.as_dict()
    assert summary["levels"] == 2
    assert summary["max_shards"] == 2
    assert summary["pooled_levels"] == 1
    assert "sharded levels" in stats.summary()


def test_parallel_stats_failure_accounting():
    stats = ParallelStats()
    stats.record_fork()
    stats.record_level(
        [10, 10], [0.2, 0.4], 0.05, in_process=False,
        failures=2, retries=1, fallback_shards=1,
    )
    stats.record_failure("shard 1/2: RuntimeError: injected")
    summary = stats.as_dict()
    assert summary["pool_forks"] == 1
    assert summary["failures"] == 2
    assert summary["retries"] == 1
    assert summary["fallback_shards"] == 1
    assert summary["pool_broken"] is False
    rendered = stats.summary()
    assert "1 pool fork(s)" in rendered
    assert "2 shard failure(s)" in rendered
    assert "1 serial fallback(s)" in rendered


def test_parallel_stats_broken_pool():
    stats = ParallelStats()
    stats.mark_broken("every shard of a level fell back")
    assert stats.pool_broken
    assert stats.as_dict()["pool_broken"] is True
    assert any("pool broken" in line for line in stats.failure_log)
    assert "pool broken" in stats.summary()


def test_parallel_stats_clean_summary_has_no_failure_noise():
    stats = ParallelStats()
    stats.record_fork()
    stats.record_level([10], [0.1], 0.0, in_process=False)
    rendered = stats.summary()
    assert "failure" not in rendered
    assert "fallback" not in rendered


def test_merge_shard_counters_same_total_mismatch_needs_debug(monkeypatch):
    """Ledgers with equal totals but different (var, level) keys pass the
    cheap always-on check; the full equality check is gated behind
    REPRO_DEBUG=1."""
    a = OpCounters()
    a.record_counted("S", 2, 10)
    b = OpCounters()
    b.record_counted("T", 3, 10)  # same total_counted, different key
    monkeypatch.delenv("REPRO_DEBUG", raising=False)
    merged = merge_shard_counters([a, b])
    assert merged.total_counted == 10
    monkeypatch.setenv("REPRO_DEBUG", "1")
    with pytest.raises(ValueError):
        merge_shard_counters([a, b])


def test_merge_shard_counters_total_mismatch_always_raises(monkeypatch):
    monkeypatch.delenv("REPRO_DEBUG", raising=False)
    other = OpCounters()
    other.record_counted("S", 2, 3)
    with pytest.raises(ValueError):
        merge_shard_counters([_shard_counters(1), other])


def test_failure_log_truncation_cap():
    stats = ParallelStats()
    for i in range(ParallelStats.MAX_FAILURE_LOG + 25):
        stats.record_failure(f"shard failure {i}")
    assert len(stats.failure_log) == ParallelStats.MAX_FAILURE_LOG
    assert stats.failure_log_dropped == 25
    assert stats.as_dict()["failure_log_dropped"] == 25
    assert "dropped" in stats.summary()


def test_mark_broken_respects_failure_log_cap():
    stats = ParallelStats()
    for i in range(ParallelStats.MAX_FAILURE_LOG):
        stats.record_failure(f"shard failure {i}")
    stats.mark_broken("pool died late")
    assert stats.pool_broken
    assert len(stats.failure_log) == ParallelStats.MAX_FAILURE_LOG
    assert stats.failure_log_dropped == 1


def test_parallel_stats_summary_as_dict_round_trip():
    """Every quantity summary() renders comes from as_dict(), so the two
    views can never drift apart."""
    stats = ParallelStats()
    stats.record_fork()
    stats.record_level(
        [10, 10], [0.2, 0.4], 0.05, in_process=False,
        failures=2, retries=1, fallback_shards=1,
    )
    d = stats.as_dict()
    rendered = stats.summary()
    for key in ("levels", "pooled_levels", "max_shards", "pool_forks",
                "failures", "retries", "fallback_shards"):
        assert str(d[key]) in rendered
