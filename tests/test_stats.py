"""Unit tests for the ccc operation counters."""

from repro.db.stats import CostWeights, OpCounters, ScanStats


def test_record_counted_accumulates():
    counters = OpCounters()
    counters.record_counted("S", 2, 10)
    counters.record_counted("S", 2, 5)
    counters.record_counted("T", 1, 7)
    assert counters.support_counted[("S", 2)] == 15
    assert counters.total_counted == 22
    assert counters.counted_for("S") == 15
    assert counters.counted_by_level("S") == {2: 15}


def test_record_check_splits_by_size():
    counters = OpCounters()
    counters.record_check(1, 4)
    counters.record_check(3)
    assert counters.constraint_checks_singleton == 4
    assert counters.constraint_checks_larger == 1
    assert counters.total_checks == 5


def test_record_scan():
    counters = OpCounters()
    counters.record_scan(100)
    counters.record_scan(50)
    assert counters.scans == 2
    assert counters.tuples_read == 150


def test_cost_is_weighted_sum():
    counters = OpCounters()
    counters.subset_tests = 10
    counters.record_counted("S", 1, 2)
    counters.record_check(1, 3)
    counters.record_scan(4)
    weights = CostWeights(subset_test=1, counted_set=5, check=1, tuple_read=0.5)
    assert counters.cost(weights) == 10 + 2 * 5 + 3 + 4 * 0.5


def test_merged_adds_everything():
    a = OpCounters()
    a.record_counted("S", 1, 2)
    a.record_check(2)
    a.record_scan(10)
    b = OpCounters()
    b.record_counted("S", 1, 3)
    b.record_counted("T", 2, 1)
    b.pair_checks = 4
    merged = a.merged(b)
    assert merged.support_counted[("S", 1)] == 5
    assert merged.support_counted[("T", 2)] == 1
    assert merged.constraint_checks_larger == 1
    assert merged.tuples_read == 10
    assert merged.pair_checks == 4
    # Originals untouched.
    assert a.support_counted[("S", 1)] == 2


def test_as_dict_keys():
    summary = OpCounters().as_dict()
    assert {"sets_counted", "scans", "cost"} <= set(summary)


def test_scan_stats_merged():
    merged = ScanStats(1, 10).merged(ScanStats(2, 5))
    assert merged.scans == 3
    assert merged.tuples_read == 15
