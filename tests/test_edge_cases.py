"""Edge cases and failure injection across the pipeline."""

import pytest

from repro.core.optimizer import CFQOptimizer, mine_cfq
from repro.core.query import CFQ
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain, derived_type_domain
from repro.db.transactions import TransactionDatabase
from repro.mining.aprioriplus import apriori_plus


@pytest.fixture
def item(market_catalog):
    return Domain.items(market_catalog)


def test_nothing_frequent(item):
    """A threshold nothing meets: empty lattices, empty pairs, no crash."""
    db = TransactionDatabase([(1,), (2,), (3,)])
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.9,
              constraints=["max(S.Price) <= min(T.Price)"])
    result = mine_cfq(db, cfq)
    assert result.frequent_valid("S") == {}
    assert result.pairs() == []


def test_one_side_empty_after_constraints(item, market_db):
    """S's filter admits nothing: the reduction must not crash and pairs
    must be empty — matching the baseline."""
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["max(S.Price) <= 1", "S.Type = T.Type"])
    result = mine_cfq(market_db, cfq)
    baseline = apriori_plus(market_db, cfq)
    assert result.pairs() == []
    assert baseline.pairs() == []


def test_empty_transactions_in_db(item, market_db):
    db = TransactionDatabase([()] * 5 + list(market_db.transactions))
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["max(S.Price) <= min(T.Price)"])
    result = mine_cfq(db, cfq)
    baseline = apriori_plus(db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())


def test_unsatisfiable_twovar_constraint(item, market_db):
    """max(S.Price) <= min(T.Price) with T restricted below every S
    price: valid pairs are exactly none, discovered early."""
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["min(S.Price) >= 50", "max(T.Price) <= 20",
                           "max(S.Price) <= min(T.Price)"])
    result = mine_cfq(market_db, cfq)
    assert result.pairs() == []
    # The reduction should have shut down at least one lattice quickly.
    assert result.counters.total_counted <= 20


def test_derived_domain_end_to_end(market_catalog, market_db):
    """T ranges over the Type domain; the whole pipeline (projection,
    reduction, pairs) agrees with the baseline."""
    item = Domain.items(market_catalog)
    types = derived_type_domain(market_catalog)
    cfq = CFQ(
        domains={"S": item, "T": types},
        minsup={"S": 0.2, "T": 0.2},
        constraints=["S.Type ⊆ T"],
    )
    result = mine_cfq(market_db, cfq)
    baseline = apriori_plus(market_db, cfq)
    pairs = set(result.pairs())
    assert pairs == set(baseline.pairs())
    assert pairs  # snack/beer type sets exist and are frequent
    for s0, t0 in pairs:
        s_types = market_catalog.project_set(s0, "Type")
        t_values = types.element_values(t0)
        assert s_types <= t_values


def test_aggregate_over_bare_variable(market_db):
    """max(S) aggregates the element ids themselves (identity values)."""
    catalog = ItemCatalog({"Price": {i: i * 10 for i in range(1, 7)}})
    item = Domain.items(catalog)
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["max(S) <= min(T)"])
    result = mine_cfq(market_db, cfq)
    baseline = apriori_plus(market_db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())
    for s0, t0 in result.pairs():
        assert max(s0) <= min(t0)


def test_duplicate_constraints_are_harmless(item, market_db):
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["S.Type = T.Type", "S.Type = T.Type"])
    result = mine_cfq(market_db, cfq)
    baseline = apriori_plus(market_db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())


def test_contradictory_onevar_constraints(item, market_db):
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["min(S.Price) >= 50", "max(S.Price) <= 20"])
    result = mine_cfq(market_db, cfq)
    assert result.frequent_valid("S") == {}
    assert result.pairs() == []


def test_same_domain_trivial_reduction_case(market_db):
    """Section 6.2's Apriori+-is-ccc-optimal corner: min(S.A) <= min(T.A)
    with both variables over the same lattice — the reduced constraints
    become trivial, every frequent set is a valid S- and T-set."""
    catalog = ItemCatalog({"A": {i: i for i in range(1, 7)}})
    item = Domain.items(catalog)
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.3,
              constraints=["min(S.A) <= min(T.A)"])
    result = mine_cfq(market_db, cfq)
    baseline = apriori_plus(market_db, cfq)
    assert result.frequent_valid("S") == baseline.frequent("S")
    assert set(result.pairs()) == set(baseline.pairs())


def test_max_level_bounds_everything(item, market_db):
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["S.Type = T.Type"], max_level=1)
    result = mine_cfq(market_db, cfq)
    assert all(len(s) == 1 for s in result.frequent_valid("S"))
