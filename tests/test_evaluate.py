"""Unit tests for constraint evaluation semantics."""

import pytest

from repro.constraints.evaluate import (
    evaluate_aggregate,
    evaluate_all,
    evaluate_constraint,
    projection_set,
    projection_values,
)
from repro.constraints.ast import Agg, AttrRef
from repro.constraints.parser import parse_constraint
from repro.db.domain import Domain, derived_type_domain
from repro.errors import ConstraintTypeError


@pytest.fixture
def domains(market_catalog):
    item = Domain.items(market_catalog)
    return {"S": item, "T": item}


def evaluate(text, s, t, domains):
    return evaluate_constraint(parse_constraint(text), {"S": s, "T": t}, domains)


def test_aggregates(market_catalog, domains):
    domain = domains["S"]
    assert evaluate_aggregate(Agg("min", AttrRef("S", "Price")), (1, 4), domain) == 10
    assert evaluate_aggregate(Agg("max", AttrRef("S", "Price")), (1, 4), domain) == 40
    assert evaluate_aggregate(Agg("sum", AttrRef("S", "Price")), (1, 4), domain) == 50
    assert evaluate_aggregate(Agg("avg", AttrRef("S", "Price")), (1, 4), domain) == 25
    assert evaluate_aggregate(Agg("count", AttrRef("S", "Type")), (1, 2, 4), domain) == 2


def test_projection_values_multiset_vs_set(domains):
    ref = AttrRef("S", "Type")
    assert projection_values(ref, (1, 2), domains["S"]) == ["snack", "snack"]
    assert projection_set(ref, (1, 2), domains["S"]) == frozenset({"snack"})


def test_scalar_comparisons(domains):
    assert evaluate("max(S.Price) <= min(T.Price)", (1, 2), (4, 5), domains)
    assert not evaluate("max(S.Price) <= min(T.Price)", (1, 6), (4,), domains)
    assert evaluate("sum(S.Price) <= 100", (1, 2, 3), (), domains)
    assert evaluate("count(S.Type) = 1", (1, 2, 3), (), domains)
    assert not evaluate("count(S.Type) = 1", (1, 4), (), domains)


def test_set_comparisons(domains):
    assert evaluate("S.Type = T.Type", (1,), (2, 3), domains)
    assert evaluate("S.Type ∩ T.Type = ∅", (1,), (4,), domains)
    assert not evaluate("S.Type ∩ T.Type = ∅", (1,), (2, 4), domains)
    assert evaluate("S.Type = {snack}", (1, 2), (), domains)
    assert not evaluate("S.Type = {snack}", (1, 4), (), domains)


def test_empty_set_semantics(domains):
    # sum over empty is 0; count over empty is 0.
    assert evaluate("sum(S.Price) <= 100", (), (), domains)
    assert evaluate("count(S.Type) = 0", (), (), domains)
    # min/max/avg over empty are undefined -> comparison is False.
    assert not evaluate("min(S.Price) >= 0", (), (), domains)
    assert not evaluate("max(S.Price) <= 9999", (), (), domains)
    assert not evaluate("avg(S.Price) >= 0", (), (), domains)


def test_derived_domain_evaluation(market_catalog):
    item = Domain.items(market_catalog)
    types = derived_type_domain(market_catalog)
    domains = {"S": item, "T": types}
    constraint = parse_constraint("S.Type ⊆ T")
    snack_type_elements = types.project((1,))
    assert evaluate_constraint(
        constraint, {"S": (1, 2), "T": snack_type_elements}, domains
    )
    beer_type_elements = types.project((4,))
    assert not evaluate_constraint(
        constraint, {"S": (1, 2), "T": beer_type_elements}, domains
    )


def test_sum_over_strings_raises(domains):
    with pytest.raises(ConstraintTypeError):
        evaluate("sum(S.Type) <= 5", (1,), (), domains)


def test_unbound_variable_raises(domains):
    with pytest.raises(ConstraintTypeError):
        evaluate_constraint(
            parse_constraint("max(S.Price) <= min(T.Price)"), {"S": (1,)}, domains
        )


def test_evaluate_all_conjunction(domains):
    constraints = [
        parse_constraint("max(S.Price) <= 30"),
        parse_constraint("S.Type = {snack}"),
    ]
    assert evaluate_all(constraints, {"S": (1, 2)}, domains)
    assert not evaluate_all(constraints, {"S": (1, 4)}, domains)
