"""Compilation of 1-var constraints into operational pruning forms.

The key property: for every constraint the compiled bundle is a *sound
decomposition* — a set satisfies the constraint iff/only-if it passes all
compiled pieces — with equivalence for the exactly-compilable shapes and
implication for the relaxed ones.  Verified exhaustively on small domains
and property-based with hypothesis on random catalogs.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.evaluate import evaluate_constraint
from repro.constraints.onevar import OneVarView
from repro.constraints.parser import parse_constraint
from repro.constraints.pruners import (
    CompiledPruning,
    compile_onevar,
    element_value_map,
    select_elements,
)
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain


def small_domain():
    catalog = ItemCatalog(
        {
            "A": {1: 2, 2: 4, 3: 5, 4: 7, 5: 7},
            "Type": {1: "a", 2: "b", 3: "a", 4: "c", 5: "b"},
        }
    )
    return Domain.items(catalog)


def passes(bundle: CompiledPruning, itemset, domain) -> bool:
    filtered = bundle.filtered_universe(itemset)
    if len(filtered) != len(itemset):
        return False
    return bundle.lattice_valid(itemset) and bundle.post_filters_pass(itemset)


# Shapes whose compilation is exactly equivalent to the constraint.
EXACT = [
    "S.Type ⊆ {a, b}",
    "S.Type ⊇ {a, b}",
    "S.Type = {a, b}",
    "S.Type != {a}",
    "S.Type ∩ {a} = ∅",
    "S.Type ∩ {a} != ∅",
    "S.Type ⊄ {a, b}",
    "S.Type ⊉ {a, b}",
    "min(S.A) >= 5",
    "min(S.A) > 4",
    "min(S.A) <= 4",
    "min(S.A) = 4",
    "min(S.A) != 4",
    "max(S.A) <= 5",
    "max(S.A) < 7",
    "max(S.A) >= 5",
    "max(S.A) = 7",
    "count(S) <= 2",
    "count(S.Type) <= 2",
    "count(S.Type) >= 2",
    "count(S.Type) = 2",
    "count(S.Type) != 2",
    "sum(S.A) <= 10",
    "sum(S.A) < 10",
    "sum(S.A) >= 10",
    "sum(S.A) = 9",
    "avg(S.A) <= 5",
    "avg(S.A) >= 5",
    "avg(S.A) > 4.5",
]


@pytest.mark.parametrize("text", EXACT)
def test_compiled_bundle_equivalent_to_constraint(text):
    domain = small_domain()
    constraint = parse_constraint(text)
    bundle = compile_onevar(OneVarView.of(constraint), domain)
    for k in range(1, len(domain.elements) + 1):
        for combo in combinations(domain.elements, k):
            expected = evaluate_constraint(constraint, {"S": combo}, {"S": domain})
            assert passes(bundle, combo, domain) is expected, (text, combo)


def test_opaque_constraint_becomes_post_filter():
    domain = small_domain()
    constraint = parse_constraint("min(S.A) <= max(S.A)")
    bundle = compile_onevar(OneVarView.of(constraint), domain)
    assert not bundle.filters and not bundle.buckets and not bundle.am_checks
    assert len(bundle.post_filters) == 1
    assert passes(bundle, (1, 2), domain)


def test_equality_to_empty_set_is_unsatisfiable():
    domain = small_domain()
    bundle = compile_onevar(OneVarView.of(parse_constraint("S.Type = {}")), domain)
    assert bundle.filtered_universe(domain.elements) == ()


def test_not_superset_of_empty_is_unsatisfiable():
    domain = small_domain()
    bundle = compile_onevar(OneVarView.of(parse_constraint("S.Type ⊉ {}")), domain)
    assert bundle.filtered_universe(domain.elements) == ()


def test_avg_relaxation_installs_bucket():
    domain = small_domain()
    bundle = compile_onevar(OneVarView.of(parse_constraint("avg(S.A) <= 4")), domain)
    assert bundle.buckets, "avg <= c should push its implied min-bound bucket"
    # bucket contains exactly the elements with A <= 4
    assert bundle.buckets[0].bucket == select_elements(domain, "A", lambda v: v <= 4)


def test_merge_and_extend():
    domain = small_domain()
    a = compile_onevar(OneVarView.of(parse_constraint("max(S.A) <= 5")), domain)
    b = compile_onevar(OneVarView.of(parse_constraint("min(S.A) <= 2")), domain)
    merged = a.merge(b)
    assert len(merged.filters) == 1 and len(merged.buckets) == 1
    a.extend(b)
    assert len(a.buckets) == 1
    assert not CompiledPruning().merge(CompiledPruning()).filters
    assert CompiledPruning().is_trivial and not merged.is_trivial


def test_describe_lists_every_pruner():
    domain = small_domain()
    bundle = compile_onevar(OneVarView.of(parse_constraint("min(S.A) = 4")), domain)
    description = "\n".join(bundle.describe())
    assert "item-filter" in description and "required-bucket" in description


def test_element_value_map_identity_and_attr():
    domain = small_domain()
    assert element_value_map(domain, None)[3] == 3
    assert element_value_map(domain, "A")[3] == 5


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=7),
    const=st.integers(min_value=0, max_value=9),
    text_template=st.sampled_from(
        [
            "min(S.A) >= {c}",
            "min(S.A) <= {c}",
            "max(S.A) <= {c}",
            "max(S.A) >= {c}",
            "sum(S.A) <= {c}",
            "avg(S.A) <= {c}",
            "avg(S.A) >= {c}",
        ]
    ),
)
def test_compilation_soundness_property(values, const, text_template):
    """On random catalogs, satisfaction always implies passing the bundle
    (no valid set is ever pruned)."""
    catalog = ItemCatalog({"A": {i: v for i, v in enumerate(values)}})
    domain = Domain.items(catalog)
    constraint = parse_constraint(text_template.format(c=const))
    bundle = compile_onevar(OneVarView.of(constraint), domain)
    for k in range(1, len(values) + 1):
        for combo in combinations(domain.elements, k):
            if evaluate_constraint(constraint, {"S": combo}, {"S": domain}):
                assert passes(bundle, combo, domain), (combo, constraint)
