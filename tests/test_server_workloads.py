"""Randomized server workloads: wrong or stale answers never escape.

Hypothesis drives one :class:`~repro.serve.server.QueryServer` core
(the HTTP-agnostic layer — exactly what every worker thread runs)
through random event interleavings: queries from tenants with very
different admission profiles, live dataset churn migrated with
``apply_delta``, fake-clock advances past the cache TTL, a fault plan
injecting skeleton-refresh failures and a clock jump mid-run.

The property: every ``200`` response carrying a *complete* answer is
bit-identical to a cold single-threaded run against the dataset version
that was live when the request was admitted — regardless of which cache
tier, flight, or fallback produced it.  Everything else must be an
*honest* degradation: a schema-valid 4xx rejection, or a partial answer
that says so (and that never poisons what an unguarded tenant sees
next).  A shrunk failure reads as a minimal event log via ``note()``.
"""

import json
import random
from functools import lru_cache

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.db.transactions import TransactionDatabase
from repro.runtime import faults
from repro.runtime.faults import FaultPlan
from repro.serve import (
    QueryServer,
    QueryService,
    TenantProfile,
    TenantRegistry,
    answer_document,
    validate_error_body,
)
from repro.serve.replay import query_text

WORKLOAD = quickstart_workload(n_transactions=120)

MINSUPS = (0.03, 0.06)
CONSTRAINT_SETS = (
    tuple(WORKLOAD.constraints),
    tuple(WORKLOAD.constraints[:2]),
)

#: ``capped`` trips its candidate budget on anything non-trivial;
#: ``bob`` is two requests of burst with no refill; ``alice`` and the
#: ``default`` profile (serving strangers) are unconstrained.  Partials
#: and 429s are *expected* outcomes for some tenants — what the
#: property forbids is those outcomes leaking to the tenants that did
#: not earn them.
TENANTS = ("alice", "bob", "stranger", "capped")
UNGUARDED = {"alice", "stranger"}


def _registry(clock):
    return TenantRegistry(
        {
            "alice": TenantProfile(name="alice", rate=1000.0, burst=1000.0),
            "bob": TenantProfile(name="bob", rate=0.0, burst=2.0),
            "capped": TenantProfile(
                name="capped", rate=1000.0, burst=1000.0, max_candidates=1
            ),
        },
        default=TenantProfile(name="default", rate=1000.0, burst=1000.0),
        clock=clock,
    )


@lru_cache(maxsize=None)
def _cold_oracle(transactions, minsup, c_index):
    """JSON-normalized cold answer keyed by dataset *content*."""
    cfq = WORKLOAD.cfq(
        constraints=list(CONSTRAINT_SETS[c_index]), minsup=minsup
    )
    db = TransactionDatabase([list(t) for t in transactions])
    result = CFQOptimizer(cfq).execute(db)
    return json.loads(json.dumps(answer_document(result)))


def _churn_payload(db, op, n, seed):
    rng = random.Random((seed, n, len(db)).__hash__())
    if op == "delete" and len(db) > n:
        return db.delete(rng.sample(range(len(db)), n))
    universe = sorted(db.item_universe() or {1})
    return db.append([
        tuple(sorted(rng.sample(universe, min(4, len(universe)))))
        for _ in range(n)
    ])


_query_events = st.tuples(
    st.just("query"),
    st.sampled_from(TENANTS),
    st.sampled_from(MINSUPS),
    st.sampled_from(range(len(CONSTRAINT_SETS))),
)
_churn_events = st.tuples(
    st.just("churn"),
    st.sampled_from(["append", "delete"]),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),
)
_other_events = st.one_of(
    st.tuples(st.just("advance"), st.sampled_from([5.0, 61.0])),
    st.tuples(st.just("clear")),
)
_events = st.lists(
    st.one_of(_query_events, _churn_events, _other_events),
    min_size=1,
    max_size=8,
)


@settings(max_examples=10, deadline=None)
@given(events=_events, data=st.data())
def test_random_server_workload_serves_no_wrong_answer(events, data):
    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    # Deterministic chaos underneath the whole run: one skeleton
    # refresh fails mid-churn (the service must fall back, not serve
    # junk), and one clock read jumps past the TTL (expiring caches at
    # a moment no event chose).
    plan = (
        FaultPlan(seed=data.draw(st.integers(0, 3), label="fault-seed"))
        .add("skeleton.refresh", "error", times=1, after=1)
        .add("clock", "clock_jump", times=1, after=20, jump_seconds=120.0)
    )
    wrapped_clock = plan.wrap_clock(clock)
    service = QueryService(
        max_entries=3, max_skeletons=2, ttl_seconds=60,
        clock=wrapped_clock, telemetry=True,
    )
    core = QueryServer(
        service,
        WORKLOAD.db,
        WORKLOAD.domains,
        tenants=_registry(wrapped_clock),
        window_seconds=0.0,
        doc_cache_entries=2,  # tiny: doc-cache eviction happens in-run
        clock=wrapped_clock,
    )
    live_db = WORKLOAD.db

    with faults.installed(plan):
        for event in events:
            kind = event[0]
            if kind == "churn":
                _, op, n, seed = event
                live_db, delta = _churn_payload(live_db, op, n, seed)
                report = core.apply_delta(live_db, delta)
                note(f"churn {op} n={n} seed={seed} -> {len(live_db)} txns "
                     f"(refreshed={report.skeletons_refreshed})")
                assert core.db is live_db
            elif kind == "query":
                _, tenant, minsup, c_index = event
                cfq = WORKLOAD.cfq(
                    constraints=list(CONSTRAINT_SETS[c_index]), minsup=minsup
                )
                status, body = core.handle_query(
                    {"query": query_text(cfq), "tenant": tenant}
                )
                if status != 200:
                    validate_error_body(json.loads(json.dumps(body)))
                    note(f"query {tenant} minsup={minsup} c={c_index} "
                         f"-> {status} {body['code']}")
                    # Single-threaded driving can never fill the queue,
                    # and every tenant name resolves to a profile:
                    # rejection here means rate limiting, nothing else.
                    assert status == 429 and body["code"] == "rate_limit"
                    assert tenant == "bob"
                    continue
                answer = body["answer"]
                serving = body["serving"]
                note(f"query {tenant} minsup={minsup} c={c_index} -> 200 "
                     f"{answer['status']} source={serving['source']}")
                if answer["status"] == "partial":
                    # Honest degradation: self-identified, attributed,
                    # truncated — and only for the budget-capped tenant.
                    assert tenant == "capped"
                    assert serving.get("interruption") is not None
                    assert "pairs" not in answer
                    continue
                assert answer["status"] == "complete"
                oracle = _cold_oracle(live_db.transactions, minsup, c_index)
                assert answer == oracle, (tenant, minsup, c_index, serving)
                if tenant in UNGUARDED:
                    # No guard, so nothing may have truncated it — a
                    # partial here means a poisoned cache or flight.
                    assert serving.get("interruption") is None
            elif kind == "advance":
                clock.now += event[1]
                note(f"advance +{event[1]}s (now {clock.now})")
            else:  # clear
                removed = service.clear()
                note(f"clear removed={removed}")
            assert core.queue_depth == 0

    status, health = core.healthz()
    assert status == 200 and health["status"] == "ok"
    status, stats = core.stats()
    assert status == 200
    assert stats["telemetry"]["metrics"] is not None
    assert service.stats.bytes_held >= 0
