"""Differential proof of the serving layer's bit-identity contract.

The claim (``docs/serving.md``): an answer served warm — from the
result cache or re-executed against a cached frequency skeleton — is
**bit-identical** to a cold run: the same frequent sets with the same
supports *in the same dict insertion order* (pair formation iterates
those dicts, so order is answer-bearing), the same valid pairs in the
same order, the same ``J^k_max`` bound histories, and — for result-cache
hits — the same full operation counters.  Proven here on three workload
families (quickstart, Figure 8(b), and the Section 7.3 Jmax query).

Skeleton-served runs execute the *normal* engine with dictionary
lookups substituted for database passes, so their answer-bearing
counters (the per-``(var, level)`` counting ledger, constraint checks,
pair checks) match a cold run exactly while scans and subset tests are
legitimately ~0 — the comparison below splits along that line.
"""

import json
import math

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import (
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)
from repro.serve import (
    QueryService,
    parse_artifact,
    rebuild_counters,
    rebuild_result,
    serialize_result,
)

WORKLOADS = {
    "quickstart": lambda: quickstart_workload(n_transactions=300),
    "fig8b": lambda: fig8b_workload(40.0, n_items=120, n_transactions=300),
    "jmax": lambda: jmax_workload(600.0, n_transactions=200, core_size=8),
}

#: OpCounters.as_dict fields a skeleton-served run must reproduce
#: exactly (answer-bearing); scans/subset_tests/tuples_read are the
#: database-pass meters an oracle run legitimately skips.
ANSWER_COUNTERS = (
    "sets_counted",
    "constraint_checks_singleton",
    "constraint_checks_larger",
    "pair_checks",
)


def _lattice_state(result):
    """Everything answer-bearing, with order made explicit."""
    state = {}
    for var, lattice in result.raw.lattices.items():
        state[var] = {
            "frequent": {
                level: list(sets.items())
                for level, sets in lattice.frequent.items()
            },
            "level1": list(lattice.level1_supports.items()),
            "counted": list(lattice.counted_per_level.items()),
            "prunes": {
                level: list(counts.items())
                for level, counts in lattice.prune_counts.items()
            },
        }
    return state


def _answers(result):
    return {
        "lattices": _lattice_state(result),
        "frequent_valid": {
            var: list(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": result.pairs(limit=40),
        "bounds": dict(result.raw.bound_histories),
        "disabled_jmax": list(result.raw.disabled_jmax),
    }


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_result_cache_hit_is_bit_identical_to_cold(name):
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(workload.db)

    service = QueryService()
    cold = service.execute(workload.db, cfq)
    warm = service.execute(workload.db, cfq)

    assert cold.cache_info["source"] == "cold"
    assert warm.cache_info["source"] == "result-cache"

    cold_answers = _answers(cold)
    assert _answers(baseline) == cold_answers, name
    assert _answers(warm) == cold_answers, name
    # Result-cache hits restore the *full* cold counters, scans included.
    assert warm.counters.as_dict() == baseline.counters.as_dict(), name
    assert warm.counters.snapshot() == baseline.counters.snapshot(), name
    assert warm.status == "complete"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_skeleton_served_batch_is_bit_identical_on_answers(name):
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(workload.db)

    service = QueryService()
    report = service.execute_batch(workload.db, [cfq])
    (item,) = report.items
    assert item.source == "skeleton", name
    served = item.result

    assert _answers(served) == _answers(baseline), name
    cold_counts = baseline.counters.as_dict()
    warm_counts = served.counters.as_dict()
    for field in ANSWER_COUNTERS:
        assert warm_counts[field] == cold_counts[field], (name, field)
    # The per-(var, level) counting ledger is itself order-identical.
    assert (
        served.counters.snapshot()["support_counted"]
        == baseline.counters.snapshot()["support_counted"]
    ), name
    # ... while the database-pass meters show the shared scan paid off.
    assert warm_counts["scans"] < cold_counts["scans"], name


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_skeleton_then_single_execute_is_bit_identical(name):
    """After a batch warmed the skeleton tier, a *single* execute of a
    previously unseen query over the same dataset is served from the
    skeleton and still matches its cold run."""
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    # A sibling query: same dataset and domains, tighter threshold,
    # fewer constraints — never stored in the result cache.
    scale = (
        (lambda s: {v: x * 1.5 for v, x in s.items()})
        if isinstance(workload.minsup, dict)
        else (lambda s: s * 1.5)
    )
    sibling = workload.cfq(
        constraints=workload.constraints[:1], minsup=scale(workload.minsup)
    )
    baseline = CFQOptimizer(sibling).execute(workload.db)

    service = QueryService()
    service.execute_batch(workload.db, [cfq])  # builds the skeletons
    served = service.execute(workload.db, sibling)
    assert served.cache_info["source"] == "skeleton", name
    assert _answers(served) == _answers(baseline), name


def test_artifact_roundtrip_is_lossless_including_nonfinite_bounds():
    """``rebuild(serialize(x))`` reproduces lattices, counters, and bound
    histories exactly — including the ``inf`` a fresh ``J^k_max`` series
    starts from, which must survive JSON."""
    workload = WORKLOADS["jmax"]()
    result = CFQOptimizer(workload.cfq()).execute(workload.db)
    raw = result.raw
    # Make the non-finite case explicit rather than hoping the workload
    # produced one.
    raw.bound_histories["T.synthetic"] = [(1, float("inf")), (2, 42.5)]

    text = serialize_result(raw, result.counters, meta={"query": "q"})
    document = parse_artifact(text)
    rebuilt = rebuild_result(document)

    assert {var: _dictitems(l) for var, l in rebuilt.lattices.items()} == {
        var: _dictitems(l) for var, l in raw.lattices.items()
    }
    assert rebuilt.bound_histories == raw.bound_histories
    assert math.isinf(dict(rebuilt.bound_histories["T.synthetic"])[1])
    assert rebuilt.disabled_jmax == list(raw.disabled_jmax)
    assert rebuild_counters(document) == result.counters.snapshot()
    # keep_candidates runs bypass the cache, so logs rebuild empty.
    assert rebuilt.candidate_logs == {}


def _dictitems(lattice):
    return {
        "frequent": {k: list(v.items()) for k, v in lattice.frequent.items()},
        "level1": list(lattice.level1_supports.items()),
        "counted": list(lattice.counted_per_level.items()),
        "prunes": {k: list(v.items()) for k, v in lattice.prune_counts.items()},
    }


def test_disk_tier_roundtrip_is_bit_identical(tmp_path):
    """A fresh process (modeled by a fresh service over the same
    ``cache_dir``) serves the stored artifact bit-identically."""
    workload = WORKLOADS["quickstart"]()
    cfq = workload.cfq()
    first = QueryService(cache_dir=str(tmp_path))
    cold = first.execute(workload.db, cfq)
    assert cold.cache_info["source"] == "cold"

    second = QueryService(cache_dir=str(tmp_path))
    warm = second.execute(workload.db, cfq)
    assert warm.cache_info["source"] == "result-cache"
    assert _answers(warm) == _answers(cold)
    assert warm.counters.as_dict() == cold.counters.as_dict()
    # The artifact on disk is standard-library-parseable JSON text.
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    document = json.loads(files[0].read_text())
    assert document["schema"] == "repro.serve.result"


def test_artifact_validation_rejects_malformed_documents():
    from repro.errors import ExecutionError
    from repro.serve import (
        ARTIFACT_SCHEMA,
        ARTIFACT_VERSION,
        validate_artifact,
    )

    with pytest.raises(ExecutionError, match="JSON object"):
        validate_artifact(["not", "an", "object"])
    with pytest.raises(ExecutionError, match="not a result artifact"):
        validate_artifact({"schema": "something.else", "version": 1})
    with pytest.raises(ExecutionError, match="version"):
        validate_artifact({"schema": ARTIFACT_SCHEMA, "version": 99})
    with pytest.raises(ExecutionError, match="missing required key"):
        validate_artifact(
            {"schema": ARTIFACT_SCHEMA, "version": ARTIFACT_VERSION}
        )
    with pytest.raises(ExecutionError, match="not valid JSON"):
        parse_artifact("{definitely not json")
