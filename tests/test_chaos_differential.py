"""Chaos differential harness: degraded, never wrong — then healthy again.

Hypothesis drives one :class:`~repro.serve.QueryService` through random
interleavings of queries (single and batch), dataset churn with
``apply_delta``, TTL clock jumps, and **fault injection at every
registered serving fault site** (disk write/read/replace/remove, journal
append/rotation, skeleton refresh, clock).  After every query event the
served answer — frequent sets with supports, pairs, bound histories —
is compared against a fault-free cold oracle for that exact dataset
content; any deviation fails the property.

Each sequence ends with a **return-to-full-health epilogue**: faults
clear, the breaker cooldown elapses, and the harness asserts the
service serves (and persists) normally again, with the circuit breaker
re-closed and every degradation that happened visible in telemetry.

Every event is ``note()``-d, so a shrunk failure reads as a minimal
chaos schedule that can be replayed as a ``--fault-plan``.
"""

import random
import tempfile
from functools import lru_cache

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.db.transactions import TransactionDatabase
from repro.runtime import faults
from repro.runtime.faults import FaultPlan
from repro.serve import QueryService

WORKLOAD = quickstart_workload(n_transactions=120)
MINSUPS = (0.03, 0.06)

#: Every (site, kind) combination the chaos schedule may inject.  One
#: entry per registered serving site — the acceptance criterion is that
#: *every* site is attackable, not a cherry-picked subset.
CHAOS_FAULTS = (
    ("serve.disk.write", "enospc"),
    ("serve.disk.write", "eacces"),
    ("serve.disk.write", "torn"),
    ("serve.disk.read", "eio"),
    ("serve.disk.read", "short"),
    ("serve.disk.read", "corrupt"),
    ("serve.disk.replace", "rename"),
    ("serve.disk.remove", "eio"),
    ("journal.write", "eio"),
    ("journal.rotate", "eio"),
    ("skeleton.refresh", "error"),
    ("skeleton.refresh", "eio"),
    ("clock", "clock_jump"),
)


@lru_cache(maxsize=None)
def _cold_answer_content(transactions, minsup):
    cfq = WORKLOAD.cfq(minsup=minsup)
    db = TransactionDatabase([list(t) for t in transactions])
    result = CFQOptimizer(cfq).execute(db)
    return _answer(result)


def _answer(result):
    return {
        "frequent_valid": {
            var: tuple(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": tuple(result.pairs(limit=None)),
        "bounds": {
            key: tuple(history)
            for key, history in result.raw.bound_histories.items()
        },
    }


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


_events = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.sampled_from(MINSUPS),
                  st.sampled_from(["single", "batch"])),
        st.tuples(st.just("inject"),
                  st.sampled_from(range(len(CHAOS_FAULTS))),
                  st.sampled_from([1, 2, -1])),
        st.tuples(st.just("clear-faults")),
        st.tuples(st.just("churn"), st.sampled_from(["append", "delete"]),
                  st.integers(min_value=1, max_value=4),
                  st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("advance"), st.sampled_from([5.0, 61.0])),
        st.tuples(st.just("clear-cache")),
    ),
    min_size=1,
    max_size=8,
)


def _churn(db, op, n, seed):
    rng = random.Random((seed, n, len(db)).__hash__())
    if op == "delete" and len(db) > n + 1:
        return db.delete(rng.sample(range(len(db)), n))
    universe = sorted(db.item_universe() or {1})
    return db.append([
        rng.sample(universe, min(len(universe), rng.randint(1, 4)))
        for _ in range(n)
    ])


@settings(max_examples=10, deadline=None)
@given(events=_events)
def test_chaos_schedule_never_serves_a_wrong_answer(events):
    clock = FakeClock()
    plan = FaultPlan(seed=11)
    cache_dir = tempfile.mkdtemp(prefix="chaos-cache-")
    with faults.installed(plan):
        service = QueryService(
            cache_dir=cache_dir,
            ttl_seconds=60.0,
            clock=plan.wrap_clock(clock),
            journal_path=tempfile.mktemp(prefix="chaos-journal-"),
            disk_retries=1,
            disk_backoff_seconds=0.0,
            disk_failure_threshold=2,
            disk_cooldown_seconds=30.0,
        )
        db = WORKLOAD.db
        for event in events:
            note(f"event: {event}")
            if event[0] == "query":
                _, minsup, mode = event
                expected = _cold_answer_content(db.transactions, minsup)
                if mode == "single":
                    result = service.execute(db, WORKLOAD.cfq(minsup=minsup))
                    answers = [result]
                else:
                    report = service.execute_batch(
                        db, [WORKLOAD.cfq(minsup=minsup)]
                    )
                    answers = report.results()
                for result in answers:
                    assert result.status == "complete"
                    assert _answer(result) == expected, (
                        "served answer differs from the fault-free cold "
                        f"oracle under schedule {events}"
                    )
            elif event[0] == "inject":
                _, index, times = event
                site, kind = CHAOS_FAULTS[index]
                jump = 120.0 if kind == "clock_jump" else 0.0
                plan.add(site, kind, times=times,
                         after=plan.hits.get(site, 0), jump_seconds=jump)
            elif event[0] == "clear-faults":
                plan.clear_rules()
            elif event[0] == "churn":
                _, op, n, seed = event
                db, delta = _churn(db, op, n, seed)
                service.apply_delta(db, delta)
            elif event[0] == "advance":
                clock.now += event[1]
            elif event[0] == "clear-cache":
                service.clear()

        # ------------------------------------------------------------------
        # Return to full health: faults clear, cooldown passes, the disk
        # tier probes, and the breaker must re-close.
        # ------------------------------------------------------------------
        had_faults = bool(plan.fired)
        plan.clear_rules()
        clock.now += 31.0
        service.clear()  # force the next lookups through the disk tier
        for minsup in MINSUPS:
            expected = _cold_answer_content(db.transactions, minsup)
            result = service.execute(db, WORKLOAD.cfq(minsup=minsup))
            assert _answer(result) == expected
        assert service.disk_breaker.state == "closed", (
            f"breaker stuck {service.disk_breaker.state!r} after faults "
            f"cleared (schedule {events})"
        )
        # Every absorbed disk failure left telemetry evidence.
        disk_fired = [
            (s, k) for s, k, _ in plan.fired
            if s.startswith("serve.disk.") and k not in ("short", "corrupt")
        ]
        if disk_fired:
            assert service.stats.disk_errors >= 1
        quarantine_fired = [
            (s, k) for s, k, _ in plan.fired
            if s == "serve.disk.read" and k in ("short", "corrupt")
        ]
        if quarantine_fired:
            kinds = [e["kind"] for e in service.telemetry.journal.tail()]
            assert service.stats.quarantined >= 1 or "result_miss" in kinds
        if had_faults:
            note(f"faults fired: {plan.fired}")
