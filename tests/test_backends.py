"""Counting backends: hash tree, vertical TID-lists, hybrid — all must
agree with each other and with the brute-force oracle."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.mining.backends import (
    BACKENDS,
    HashTreeBackend,
    HybridBackend,
    ParallelBackend,
    VerticalBackend,
    backend_scope,
    make_backend,
)
from repro.mining.hashtree import HashTree, build_hash_tree
from repro.mining.vertical import build_tidlists, count_with_tidlists
from tests.conftest import brute_frequent


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_backend_agrees_with_direct_support(market_db, name):
    backend = make_backend(name)
    candidates = [(1, 2), (4, 5), (2, 3), (1, 6), (3, 6)]
    support = backend.count(market_db.transactions, candidates, 2)
    for candidate in candidates:
        assert support[candidate] == market_db.support(candidate), name


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_backend_empty_candidates(market_db, name):
    backend = make_backend(name)
    assert backend.count(market_db.transactions, [], 2) == {}


def test_make_backend_passthrough_and_errors():
    backend = HybridBackend()
    assert make_backend(backend) is backend
    # ExecutionError (a ReproError), so the CLI renders a clean error
    # instead of a traceback.
    with pytest.raises(ExecutionError):
        make_backend("quantum")


@pytest.mark.parametrize(
    "spec",
    ["parallel:", "parallel:abc", "parallel:0", "parallel:-2",
     "hybrid:4", "quantum", "quantum:3"],
)
def test_make_backend_malformed_specs_raise_execution_error(spec):
    with pytest.raises(ExecutionError):
        make_backend(spec)


def test_make_backend_parallel_spec_builds_pinned_workers():
    backend = make_backend("parallel:3")
    assert isinstance(backend, ParallelBackend)
    assert backend.workers == 3


def test_hash_tree_structure_splits():
    tree = build_hash_tree(
        [tuple(sorted((a, b))) for a in range(10) for b in range(a + 1, 10)],
        2,
        leaf_size=4,
    )
    assert tree.size == 45
    assert not tree.root.is_leaf


def test_hash_tree_rejects_wrong_size():
    tree = HashTree(3)
    with pytest.raises(ValueError):
        tree.insert((1, 2))


def test_hash_tree_counts_duplicated_buckets(market_db):
    """Items 1 and 17 share a bucket at fanout 16; routing must still
    reach candidates starting with the later item."""
    transactions = [(1, 17, 20), (17, 20), (1, 20)]
    tree = build_hash_tree([(17, 20)], 2, leaf_size=1, fanout=16)
    support = tree.count(transactions)
    assert support[(17, 20)] == 2


def test_tidlists():
    lists = build_tidlists([(1, 2), (2, 3), (1, 3)])
    assert lists[1] == frozenset({0, 2})
    assert lists[2] == frozenset({0, 1})
    support = count_with_tidlists(lists, [(1, 2), (1, 3), (1, 2, 3)])
    assert support == {(1, 2): 1, (1, 3): 1, (1, 2, 3): 0}


def test_vertical_backend_caches_per_list(market_db):
    backend = VerticalBackend()
    backend.count(market_db.transactions, [(1, 2)], 2)
    assert backend.builds == 1
    backend.count(market_db.transactions, [(4, 5)], 2)
    # Same list object -> cache hit, no rebuild.
    assert backend.builds == 1


def test_vertical_backend_caches_multiple_lists(market_db):
    """A shared backend instance (one per dovetailed run) must keep both
    lattices' transaction lists cached at once."""
    backend = VerticalBackend()
    other = list(market_db.transactions[:3])
    backend.count(market_db.transactions, [(1, 2)], 2)
    backend.count(other, [(1, 2)], 2)
    assert backend.builds == 2
    backend.count(market_db.transactions, [(2, 3)], 2)
    backend.count(other, [(2, 3)], 2)
    assert backend.builds == 2


def test_vertical_backend_keys_on_content_not_identity(market_db):
    """Regression: the TID-list cache must key on transaction *content*,
    not object identity — two equal-content loads of one dataset share a
    single build, and a recycled ``id()`` can never alias a different
    dataset's TID-lists."""
    backend = VerticalBackend()
    copy_a = list(market_db.transactions)
    copy_b = [tuple(t) for t in market_db.transactions]
    assert copy_a is not copy_b
    result_a = backend.count(copy_a, [(1, 2)], 2)
    assert backend.builds == 1
    result_b = backend.count(copy_b, [(1, 2)], 2)
    assert backend.builds == 1  # equal content -> shared TID-lists
    assert result_a == result_b
    # Different content must never be served from the shared entry.
    different = [t for t in market_db.transactions if 1 not in t]
    result_c = backend.count(different, [(1, 2)], 2)
    assert backend.builds == 2
    assert result_c[(1, 2)] == 0


def test_vertical_backend_id_memo_pins_list_objects(market_db):
    """The id-keyed digest memo must hold a reference to the list object:
    if it did not, the id could be recycled by a new list and the memo
    would return the *old* list's digest for it."""
    backend = VerticalBackend()
    backend.count(market_db.transactions, [(1, 2)], 2)
    memo_object, digest = backend._digests[id(market_db.transactions)]
    assert memo_object is market_db.transactions
    assert digest in backend._cache


def test_vertical_backend_cache_is_bounded():
    backend = VerticalBackend(max_cached_lists=2)
    lists = [[(1, 2)], [(1, 3)], [(2, 3)]]
    for transactions in lists:
        backend.count(transactions, [(1, 2)], 2)
    assert len(backend._cache) == 2


@settings(max_examples=40, deadline=None)
@given(
    raw=st.lists(
        st.lists(st.integers(min_value=0, max_value=25), min_size=0, max_size=8),
        min_size=1,
        max_size=30,
    ),
    k=st.integers(min_value=2, max_value=4),
    name=st.sampled_from(sorted(BACKENDS)),
)
def test_backends_match_oracle_property(raw, k, name):
    transactions = [tuple(sorted(set(t))) for t in raw]
    universe = sorted({i for t in transactions for i in t})
    if len(universe) < k:
        return
    candidates = list(combinations(universe, k))[:80]
    backend = make_backend(name)
    support = backend.count(transactions, candidates, k)
    frozen = [frozenset(t) for t in transactions]
    for candidate in candidates:
        expected = sum(1 for t in frozen if frozenset(candidate) <= t)
        assert support[candidate] == expected, (name, candidate)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_full_mining_identical_across_backends(market_db, name):
    from repro.mining.apriori import mine_frequent

    reference = mine_frequent(market_db.transactions, range(1, 7), 2)
    other = mine_frequent(
        market_db.transactions, range(1, 7), 2, backend=name
    )
    assert other.all_sets() == reference.all_sets()


def test_optimizer_accepts_backend(market_catalog, market_db):
    from repro.core.optimizer import CFQOptimizer
    from repro.core.query import CFQ
    from repro.db.domain import Domain

    item = Domain.items(market_catalog)
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.2,
              constraints=["max(S.Price) <= min(T.Price)"])
    hybrid = CFQOptimizer(cfq).execute(market_db)
    for name in sorted(BACKENDS):
        run = CFQOptimizer(cfq).execute(market_db, backend=name)
        assert set(run.pairs()) == set(hybrid.pairs()), name


def test_parallel_backend_lifecycle_nesting(market_db):
    """open()/close() nest; the pool dies only at the outermost close."""
    backend = ParallelBackend(workers=2, shard_threshold=0)
    candidates = [(1, 2), (4, 5)]
    with backend:
        backend.count(market_db.transactions, candidates, 2)
        assert backend.pool_open
        with backend:  # nested scope must not tear down the pool
            backend.count(market_db.transactions, candidates, 2)
        assert backend.pool_open
        assert backend.stats.pool_forks == 1
    assert not backend.pool_open
    assert backend.stats.pool_forks == 1


def test_parallel_backend_reopens_after_close(market_db):
    """A second run (new scope) forks a fresh pool."""
    backend = ParallelBackend(workers=2, shard_threshold=0)
    with backend:
        backend.count(market_db.transactions, [(1, 2)], 2)
    with backend:
        backend.count(market_db.transactions, [(1, 2)], 2)
    assert backend.stats.pool_forks == 2


def test_backend_scope_is_duck_typed():
    """Backends without a lifecycle (and None) pass through untouched."""
    hybrid = HybridBackend()
    with backend_scope(hybrid) as scoped:
        assert scoped is hybrid
    with backend_scope(None) as scoped:
        assert scoped is None
    with backend_scope("hybrid") as scoped:  # names are left unresolved
        assert scoped == "hybrid"


def test_parallel_backend_rejects_bad_parameters():
    with pytest.raises(ExecutionError):
        ParallelBackend(workers=2, shard_timeout=0)
    with pytest.raises(ExecutionError):
        ParallelBackend(workers=2, max_retries=-1)


def test_backends_meter_work(market_db):
    for name in sorted(BACKENDS):
        counters = OpCounters()
        make_backend(name).count(
            market_db.transactions, [(1, 2), (4, 5)], 2, counters, "S"
        )
        assert counters.subset_tests > 0, name
        assert counters.support_counted[("S", 2)] == 2


# ---------------------------------------------------------------------------
# Pool teardown under inherited signal handlers
# ---------------------------------------------------------------------------
#
# The CLI forks the worker pool inside a ``RunGuard.signals()`` scope, so
# workers inherit whatever SIGTERM/SIGINT handlers are installed at fork
# time.  The guard's handler only sets a cooperative-cancel flag — a worker
# inheriting it would survive ``Pool.terminate()``'s SIGTERM and wedge the
# shutdown in its unbounded worker joins.  ``_pool_worker_init`` resets the
# dispositions in each worker, and ``_shutdown_pool`` bounds the teardown
# and hard-kills anything that still refuses to die.


def _pool_workers(backend):
    return list(backend._pool._pool)


def test_pool_workers_die_on_sigterm_despite_guard_handlers(market_db):
    import os
    import signal as _signal
    import time as _time

    from repro.runtime.guard import RunGuard

    backend = ParallelBackend(workers=2, shard_threshold=0)
    guard = RunGuard()
    with guard.signals():
        with backend:
            backend.count(market_db.transactions, [(1, 2)], 2)
            workers = _pool_workers(backend)
            assert workers
            victim = workers[0]
            os.kill(victim.pid, _signal.SIGTERM)
            deadline = _time.monotonic() + 10.0
            while victim.exitcode is None and _time.monotonic() < deadline:
                _time.sleep(0.05)
            # SIG_DFL was restored in the worker, so the SIGTERM that
            # Pool.terminate() relies on actually kills it.
            assert victim.exitcode is not None
    assert not backend.pool_open


def test_pool_workers_ignore_sigint(market_db):
    import os
    import signal as _signal
    import time as _time

    backend = ParallelBackend(workers=2, shard_threshold=0)
    with backend:
        expected = backend.count(market_db.transactions, [(1, 2)], 2)
        for worker in _pool_workers(backend):
            os.kill(worker.pid, _signal.SIGINT)
        _time.sleep(0.3)
        # A ctrl-C hits the whole foreground process group; workers must
        # leave it to the parent's guard and keep serving shards.
        assert all(w.exitcode is None for w in _pool_workers(backend))
        assert backend.count(market_db.transactions, [(1, 2)], 2) == expected
    assert not backend.pool_open


def test_shutdown_pool_bounds_a_wedged_terminate(monkeypatch):
    """terminate() that never returns is abandoned after JOIN_TIMEOUT."""
    import threading as _threading
    import time as _time

    class _Worker:
        def __init__(self, release):
            self._release = release
            self.kill_calls = 0

        def kill(self):
            self.kill_calls += 1
            self._release.set()

    class _WedgedPool:
        def __init__(self):
            self._release = _threading.Event()
            self._pool = [_Worker(self._release)]

        def terminate(self):
            # Blocks exactly like Pool._terminate_pool joining a worker
            # that survived SIGTERM — until kill() frees it.
            self._release.wait(30.0)

        def join(self):
            pass

    monkeypatch.setattr(ParallelBackend, "JOIN_TIMEOUT", 0.2)
    backend = ParallelBackend(workers=2)
    wedged = _WedgedPool()
    backend._pool = wedged
    start = _time.monotonic()
    backend._shutdown_pool()
    elapsed = _time.monotonic() - start
    assert backend._pool is None
    assert wedged._pool[0].kill_calls == 1
    assert elapsed < 5.0
