"""ServiceTelemetry: outcome classification, journal, gauges, nulls.

``QueryService`` owns one :class:`~repro.serve.telemetry.ServiceTelemetry`
for its whole life.  These tests pin (a) the outcome label every tier
gets — ``cold`` / ``warm-memory`` / ``warm-disk`` / ``skeleton`` /
``skeleton-batch`` / ``partial``, (b) the journal narration and gauges
behind them, and (c) that ``telemetry=False`` is genuinely inert.
"""

import json

import pytest

from repro.datagen.workloads import quickstart_workload
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.runtime.guard import RunGuard
from repro.serve import NULL_TELEMETRY, QueryService, ServiceTelemetry
from repro.serve.telemetry import resolve_telemetry


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=200)


def _outcome_counts(service):
    return {
        outcome: summary["count"]
        for outcome, summary in service.telemetry.outcome_latencies().items()
    }


# ----------------------------------------------------------------------
# Outcome classification across the serving tiers
# ----------------------------------------------------------------------
def test_cold_then_warm_memory_outcomes(workload):
    service = QueryService()
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq())
    assert _outcome_counts(service) == {"cold": 1, "warm-memory": 2}
    kinds = service.telemetry.journal.counts()
    assert kinds["result_store"] == 1
    assert kinds["result_hit"] == 2


def test_warm_disk_outcome_in_fresh_process(workload, tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = QueryService(cache_dir=cache_dir)
    first.execute(workload.db, workload.cfq())

    second = QueryService(cache_dir=cache_dir)  # fresh memory tier
    result = second.execute(workload.db, workload.cfq())
    assert result.cache_info["tier"] == "disk"
    assert _outcome_counts(second) == {"warm-disk": 1}
    (hit,) = [
        e for e in second.telemetry.journal if e["kind"] == "result_hit"
    ]
    assert hit["tier"] == "disk"

    # Now cached in memory again: the next hit is warm-memory.
    second.execute(workload.db, workload.cfq())
    assert _outcome_counts(second) == {"warm-disk": 1, "warm-memory": 1}


def test_skeleton_outcomes_single_and_batch(workload):
    service = QueryService()
    cfqs = [workload.cfq(minsup=0.03), workload.cfq(minsup=0.05)]
    report = service.execute_batch(workload.db, cfqs)
    assert all(item.source == "skeleton" for item in report.items)
    assert _outcome_counts(service) == {"skeleton-batch": 2}

    # A third query served individually off the now-warm skeleton tier.
    single = service.execute(workload.db, workload.cfq(minsup=0.04))
    assert single.cache_info["source"] == "skeleton"
    counts = _outcome_counts(service)
    assert counts["skeleton"] == 1 and counts["skeleton-batch"] == 2

    kinds = service.telemetry.journal.counts()
    assert kinds["batch_execute"] == 1
    assert kinds["skeleton_store"] >= 1
    batch_events = [
        e for e in service.telemetry.journal if e["kind"] == "batch_execute"
    ]
    assert batch_events[0]["queries"] == 2
    assert batch_events[0]["sources"] == {"skeleton": 2}


def test_partial_outcome_records_guard_trip(workload):
    service = QueryService()
    result = service.execute(
        workload.db, workload.cfq(), guard=RunGuard(max_candidates=1)
    )
    assert result.status == "partial"
    assert _outcome_counts(service) == {"partial": 1}
    assert service.telemetry.metrics.counter("guard_trips") == 1
    (trip,) = [
        e for e in service.telemetry.journal if e["kind"] == "guard_trip"
    ]
    assert trip["reason"]


# ----------------------------------------------------------------------
# Gauges and maintenance
# ----------------------------------------------------------------------
def test_cache_gauges_reflect_service_state(workload):
    service = QueryService(max_entries=4, max_skeletons=2)
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq())
    metrics = service.telemetry.metrics
    assert metrics.gauge("cache_entries", tier="result") == 1
    assert metrics.gauge("cache_occupancy", tier="result") == 0.25
    assert metrics.gauge("cache_bytes_held") == service.stats.bytes_held
    assert metrics.gauge("cache_hit_ratio") == pytest.approx(
        service.stats.hit_rate, abs=1e-6
    )


def test_eviction_feeds_age_histogram_and_journal(workload):
    service = QueryService(max_entries=1)
    service.execute(workload.db, workload.cfq(minsup=0.03))
    service.execute(workload.db, workload.cfq(minsup=0.05))  # evicts first
    evictions = [
        e for e in service.telemetry.journal if e["kind"] == "result_evict"
    ]
    assert len(evictions) == 1
    assert evictions[0]["age_seconds"] >= 0.0
    hist = service.telemetry.metrics.histogram(
        "eviction_age_seconds", tier="result"
    )
    assert hist is not None and hist.count == 1
    assert service.telemetry.metrics.gauge(
        "last_eviction_age_seconds", tier="result"
    ) is not None


def test_apply_delta_records_maintenance(workload):
    service = QueryService()
    service.execute_batch(workload.db, [workload.cfq()])
    db2, delta = workload.db.append([workload.db.transactions[0]])
    service.apply_delta(db2, delta)
    metrics = service.telemetry.metrics
    assert metrics.counter("deltas_applied") == 1
    hist = metrics.histogram("delta_apply_seconds")
    assert hist is not None and hist.count == 1
    (event,) = [
        e for e in service.telemetry.journal if e["kind"] == "delta_refresh"
    ]
    assert event["skeletons_refreshed"] + event["skeletons_dropped"] >= 1


# ----------------------------------------------------------------------
# merge_run and snapshots
# ----------------------------------------------------------------------
def test_merge_run_folds_registries_and_skips_nulls():
    telemetry = ServiceTelemetry()
    run = MetricsRegistry()
    run.inc("candidates", 5, var="S")
    run.observe("level_seconds", 0.25, var="S")
    telemetry.merge_run(run)
    telemetry.merge_run(run)
    assert telemetry.runs_merged == 2
    assert telemetry.metrics.counter("candidates", var="S") == 10
    assert telemetry.metrics.histogram("level_seconds", var="S").count == 2

    telemetry.merge_run(None)
    telemetry.merge_run(NULL_METRICS)
    assert telemetry.runs_merged == 2  # nulls never count


def test_snapshot_shape_and_write(workload, tmp_path):
    service = QueryService()
    service.execute(workload.db, workload.cfq())
    path = str(tmp_path / "telemetry.json")
    service.telemetry.write(path, stats=service.stats)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema"] == "repro.serve.telemetry"
    assert document["version"] == 1
    assert document["enabled"] is True
    assert "cold" in document["outcomes"]
    assert document["cache"]["stores"] == 1
    assert document["journal"]["seq"] >= 2
    # The metrics block is the lossless registry state: histograms
    # round-trip through it.
    restored = MetricsRegistry.from_state(document["metrics"])
    assert restored.histogram("serve_seconds", outcome="cold").count == 1


def test_record_serve_rejects_unknown_outcome():
    telemetry = ServiceTelemetry()
    with pytest.raises(ValueError):
        telemetry.record_serve("lukewarm", 0.1)


def test_telemetry_prometheus_export_lints(workload):
    from repro.obs.export import lint_prometheus

    service = QueryService()
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq())
    text = service.telemetry.to_prometheus()
    assert lint_prometheus(text) == []
    assert 'repro_serves_total{outcome="warm-memory"} 1.0' in text


# ----------------------------------------------------------------------
# The disabled path
# ----------------------------------------------------------------------
def test_disabled_telemetry_is_inert(workload):
    service = QueryService(telemetry=False)
    assert service.telemetry is NULL_TELEMETRY
    warm = service.execute(workload.db, workload.cfq())
    warm = service.execute(workload.db, workload.cfq())
    assert warm.cache_info["source"] == "result-cache"  # serving still works
    assert service.telemetry.outcome_latencies() == {}
    assert len(service.telemetry.journal) == 0
    assert service.telemetry.metrics.as_dict() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    snap = service.telemetry.snapshot()
    assert snap["enabled"] is False and snap["outcomes"] == {}
    # The caches got no departure hook at all — not even a no-op call.
    assert service._results.on_event is None
    assert service._skeletons.on_event is None


def test_resolve_telemetry_contract():
    assert resolve_telemetry(False) is NULL_TELEMETRY
    fresh = resolve_telemetry(None)
    assert isinstance(fresh, ServiceTelemetry) and fresh.enabled
    assert isinstance(resolve_telemetry(True), ServiceTelemetry)
    shared = ServiceTelemetry()
    assert resolve_telemetry(shared) is shared


def test_shared_telemetry_across_services(workload):
    """Two services can adopt one telemetry object — the fleet view."""
    telemetry = ServiceTelemetry()
    a = QueryService(telemetry=telemetry)
    b = QueryService(telemetry=telemetry)
    a.execute(workload.db, workload.cfq())
    b.execute(workload.db, workload.cfq())
    counts = {
        outcome: summary["count"]
        for outcome, summary in telemetry.outcome_latencies().items()
    }
    assert counts == {"cold": 2}  # separate caches: both ran cold
