"""The CFQ object: construction, validation, accessors."""

import pytest

from repro.core.query import CFQ
from repro.db.domain import Domain
from repro.errors import QueryValidationError


@pytest.fixture
def item(market_catalog):
    return Domain.items(market_catalog)


def test_basic_construction(item):
    cfq = CFQ(
        domains={"S": item, "T": item},
        minsup=0.1,
        constraints=["max(S.Price) <= min(T.Price)", "S.Type = {snack}"],
    )
    assert cfq.variables == ("S", "T")
    assert len(cfq.twovar) == 1
    assert len(cfq.onevar_for("S")) == 1
    assert cfq.onevar_for("T") == []


def test_minsup_scalar_and_mapping(item):
    scalar = CFQ(domains={"S": item}, minsup=0.2, constraints=[])
    assert scalar.minsup_for("S") == 0.2
    mapped = CFQ(domains={"S": item, "T": item},
                 minsup={"S": 0.1, "T": 0.3}, constraints=[])
    assert mapped.minsup_for("T") == 0.3
    with pytest.raises(QueryValidationError):
        CFQ(domains={"S": item, "T": item}, minsup={"S": 0.1},
            constraints=[]).minsup_for("T")


def test_unknown_variable_rejected(item):
    with pytest.raises(QueryValidationError):
        CFQ(domains={"S": item}, minsup=0.1,
            constraints=["max(X.Price) <= 5"])


def test_unknown_attribute_rejected(item):
    with pytest.raises(QueryValidationError):
        CFQ(domains={"S": item}, minsup=0.1,
            constraints=["max(S.Weight) <= 5"])


def test_too_many_variables_rejected(item):
    with pytest.raises(QueryValidationError):
        CFQ(domains={"S": item, "T": item, "U": item}, minsup=0.1,
            constraints=[])


def test_no_variables_rejected():
    with pytest.raises(QueryValidationError):
        CFQ(domains={}, minsup=0.1, constraints=[])


def test_prebuilt_ast_accepted(item):
    from repro.constraints.parser import parse_constraint

    node = parse_constraint("max(S.Price) <= 40")
    cfq = CFQ(domains={"S": item}, minsup=0.1, constraints=[node])
    assert cfq.parsed == [node]


def test_str_renders_query(item):
    cfq = CFQ(domains={"S": item, "T": item}, minsup=0.1,
              constraints=["S.Type = T.Type"])
    assert str(cfq).startswith("{(S, T) |")


def test_bare_variable_attr_ok_on_derived_domain(market_catalog, item):
    from repro.db.domain import derived_type_domain

    types = derived_type_domain(market_catalog)
    cfq = CFQ(domains={"S": item, "T": types}, minsup=0.1,
              constraints=["S.Type ⊆ T"])
    assert len(cfq.twovar) == 1
