"""Checkpoint document and manager tests.

The end-to-end resume guarantees (bit-identical answers) live in
``test_resume_differential``; this file covers the persistence layer:
serialization round-trips (property-based), fingerprint binding, schema
validation, and atomic save.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ExecutionError
from repro.runtime.checkpoint import (
    CHECKPOINT_FILENAME,
    Checkpoint,
    CheckpointManager,
    CountEvent,
    dataset_digest,
    run_fingerprint,
)

# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
itemsets = st.tuples(*[st.integers(min_value=0, max_value=500)] * 3).map(
    lambda t: tuple(sorted(set(t)))
)

count_events = st.builds(
    CountEvent,
    var=st.sampled_from(["S", "T"]),
    level=st.integers(min_value=1, max_value=8),
    candidates_in=st.integers(min_value=0, max_value=1000),
    supports=st.lists(
        st.tuples(itemsets, st.integers(min_value=0, max_value=10_000)),
        max_size=8,
        unique_by=lambda pair: pair[0],
    ).map(tuple),
)

checkpoints = st.builds(
    Checkpoint,
    fingerprint=st.text(
        alphabet="0123456789abcdef", min_size=8, max_size=64
    ),
    events=st.lists(count_events, max_size=6).map(tuple),
    counters=st.just(OpCounters().snapshot()),
    levels_completed=st.dictionaries(
        st.sampled_from(["S", "T"]), st.integers(min_value=1, max_value=8),
        max_size=2,
    ),
)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(event=count_events)
def test_count_event_round_trip(event):
    assert CountEvent.from_dict(event.as_dict()) == event
    # ...including through actual JSON (tuples -> lists -> tuples).
    assert CountEvent.from_dict(json.loads(json.dumps(event.as_dict()))) == event


@settings(max_examples=60, deadline=None)
@given(checkpoint=checkpoints)
def test_checkpoint_round_trip(checkpoint):
    restored = Checkpoint.from_json(checkpoint.to_json())
    assert restored == checkpoint
    # Support *order* is part of the contract: replay rebuilds dicts in
    # stored order, so serialization must preserve it exactly.
    for original, back in zip(checkpoint.events, restored.events):
        assert original.supports == back.supports


@settings(max_examples=30, deadline=None)
@given(checkpoint=checkpoints)
def test_checkpoint_save_load_round_trip(checkpoint, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("ckpt"))
    manager = CheckpointManager(directory, checkpoint.fingerprint)
    path = manager.save(checkpoint)
    assert os.path.basename(path) == CHECKPOINT_FILENAME
    assert manager.load_for_resume() == checkpoint


def test_counters_snapshot_round_trips_through_checkpoint():
    counters = OpCounters()
    counters.record_counted("S", 2, 17)
    counters.record_counted("T", 1, 5)
    counters.scans += 3
    counters.subset_tests += 1000
    checkpoint = Checkpoint(
        fingerprint="f" * 64, events=(), counters=counters.snapshot()
    )
    restored = Checkpoint.from_json(checkpoint.to_json()).counters_snapshot()
    assert restored.as_dict() == counters.as_dict()
    assert restored.cost() == counters.cost()


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def test_rejects_non_checkpoint_documents():
    with pytest.raises(ExecutionError, match="not a checkpoint"):
        Checkpoint.from_dict({"schema": "something-else", "version": 1})
    with pytest.raises(ExecutionError, match="JSON object"):
        Checkpoint.from_dict([1, 2, 3])
    with pytest.raises(ExecutionError, match="not valid JSON"):
        Checkpoint.from_json("{truncated")


def test_rejects_unknown_version():
    document = Checkpoint(fingerprint="a", events=(),
                          counters=OpCounters().snapshot()).to_dict()
    document["version"] = 999
    with pytest.raises(ExecutionError, match="version"):
        Checkpoint.from_dict(document)


def test_rejects_missing_keys():
    document = Checkpoint(fingerprint="a", events=(),
                          counters=OpCounters().snapshot()).to_dict()
    del document["counters"]
    with pytest.raises(ExecutionError, match="counters"):
        Checkpoint.from_dict(document)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_dataset_digest_is_order_sensitive():
    a = TransactionDatabase([(1, 2), (3,)])
    b = TransactionDatabase([(3,), (1, 2)])
    same = TransactionDatabase([(2, 1), (3,)])  # normalized identically
    assert dataset_digest(a) != dataset_digest(b)
    assert dataset_digest(a) == dataset_digest(same)


def test_run_fingerprint_binds_query_data_and_options():
    db = TransactionDatabase([(1, 2), (2, 3)])
    base = run_fingerprint("q", db, {"dovetail": True})
    assert run_fingerprint("q", db, {"dovetail": True}) == base
    assert run_fingerprint("other", db, {"dovetail": True}) != base
    assert run_fingerprint("q", db, {"dovetail": False}) != base
    other_db = TransactionDatabase([(1, 2)])
    assert run_fingerprint("q", other_db, {"dovetail": True}) != base


def test_stale_fingerprint_rejected_with_clear_error(tmp_path):
    directory = str(tmp_path)
    stored = Checkpoint(fingerprint="a" * 64, events=(),
                        counters=OpCounters().snapshot())
    CheckpointManager(directory, "a" * 64).save(stored)
    manager = CheckpointManager(directory, "b" * 64)
    with pytest.raises(ExecutionError) as excinfo:
        manager.load_for_resume()
    message = str(excinfo.value)
    assert "different run" in message
    assert "Delete the checkpoint directory" in message


def test_load_without_checkpoint_returns_none(tmp_path):
    manager = CheckpointManager(str(tmp_path), "a" * 64)
    assert manager.load_for_resume() is None


# ----------------------------------------------------------------------
# Atomic save
# ----------------------------------------------------------------------
def test_save_overwrites_atomically_and_leaves_no_temp_files(tmp_path):
    directory = str(tmp_path)
    manager = CheckpointManager(directory, "f" * 64)
    first = Checkpoint(fingerprint="f" * 64, events=(),
                       counters=OpCounters().snapshot(),
                       levels_completed={"S": 1})
    second = Checkpoint(fingerprint="f" * 64, events=(),
                        counters=OpCounters().snapshot(),
                        levels_completed={"S": 2})
    manager.save(first)
    manager.save(second)
    assert manager.saves == 2
    assert os.listdir(directory) == [CHECKPOINT_FILENAME]
    assert manager.load_for_resume().levels_completed == {"S": 2}


def test_failed_save_cleans_up_temp_file(tmp_path, monkeypatch):
    directory = str(tmp_path)
    manager = CheckpointManager(directory, "f" * 64)
    checkpoint = Checkpoint(fingerprint="f" * 64, events=(),
                            counters=OpCounters().snapshot())

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    assert manager.save(checkpoint) is None  # absorbed, not raised
    monkeypatch.undo()
    assert os.listdir(directory) == []  # temp file unlinked, no torn file
    assert manager.saves == 0
    assert manager.failures == 1
    assert not manager.degraded  # one failure is below the threshold
    # The disk recovered: the next boundary saves normally again.
    assert manager.save(checkpoint) == manager.path
    assert manager.saves == 1
