"""The tiny-scenario builder used by the empirical verification layer."""

from repro.datagen.tiny import tiny_scenario


def test_scenario_is_deterministic():
    a = tiny_scenario(3)
    b = tiny_scenario(3)
    assert a.frequent == b.frequent
    assert a.transactions == b.transactions


def test_frequent_collections_are_subset_closed():
    from itertools import combinations

    scenario = tiny_scenario(5)
    for var in ("S", "T"):
        frequent = scenario.frequent[var]
        for itemset in frequent:
            for subset in combinations(itemset, len(itemset) - 1):
                if subset:
                    assert subset in frequent, (var, itemset, subset)


def test_domains_are_disjoint_id_spaces():
    scenario = tiny_scenario(1)
    s_ids = set(scenario.domains["S"].elements)
    t_ids = set(scenario.domains["T"].elements)
    assert not (s_ids & t_ids)


def test_value_range_respected():
    scenario = tiny_scenario(2, value_range=(-3, 4))
    for var, attr in (("S", "A"), ("T", "B")):
        for element in scenario.domains[var].elements:
            value = scenario.domains[var].catalog.value(element, attr)
            assert -3 <= value <= 4


def test_l1_matches_frequent_singletons():
    scenario = tiny_scenario(4)
    for var in ("S", "T"):
        expected = sorted(
            s[0] for s in scenario.frequent[var] if len(s) == 1
        )
        assert scenario.l1(var) == expected
