"""Fuzzed CAP correctness: random 1-var constraint conjunctions on random
catalogs/databases must match the oracle (brute-force frequent sets
filtered by ground-truth evaluation)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.evaluate import evaluate_all
from repro.constraints.parser import parse_constraint
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.mining.cap import cap_mine
from tests.conftest import brute_frequent

TEMPLATES = [
    "max(S.A) <= {c}",
    "min(S.A) >= {c}",
    "min(S.A) <= {c}",
    "max(S.A) >= {c}",
    "sum(S.A) <= {c2}",
    "avg(S.A) <= {c}",
    "avg(S.A) >= {c}",
    "count(S) <= 3",
    "count(S.C) = 1",
    "S.C = {{x}}",
    "S.C ∩ {{y}} != ∅",
    "S.C ⊆ {{x, y}}",
    "S.C ⊇ {{x}}",
    "S.C ⊄ {{x}}",
]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    templates=st.lists(st.sampled_from(TEMPLATES), min_size=1, max_size=3,
                       unique=True),
    const=st.integers(min_value=0, max_value=20),
)
def test_cap_matches_oracle_under_random_conjunctions(seed, templates, const):
    rng = np.random.RandomState(seed)
    n_items = 7
    catalog = ItemCatalog(
        {
            "A": {i: int(rng.randint(0, 20)) for i in range(n_items)},
            "C": {i: ["x", "y", "z"][rng.randint(3)] for i in range(n_items)},
        }
    )
    domain = Domain.items(catalog)
    transactions = [
        tuple(sorted(rng.choice(n_items, size=rng.randint(1, n_items),
                                replace=False)))
        for __ in range(25)
    ]
    constraints = [
        parse_constraint(t.format(c=const, c2=const * 3)) for t in templates
    ]
    mined = cap_mine("S", domain, transactions, 3, constraints).all_sets()
    oracle = {
        itemset: support
        for itemset, support in brute_frequent(
            transactions, domain.elements, 3
        ).items()
        if evaluate_all(constraints, {"S": itemset}, {"S": domain})
    }
    assert mined == oracle, templates
