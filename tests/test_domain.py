"""Unit tests for variable domains (item segments, derived domains)."""

import pytest

from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain, derived_type_domain
from repro.errors import DataError


def test_item_domain_projection_is_intersection(market_catalog):
    domain = Domain.items(market_catalog)
    assert domain.project((2, 4, 99)) == (2, 4)


def test_item_domain_subset(market_catalog):
    domain = Domain.items(market_catalog, name="Snacks", subset=[1, 2, 3])
    assert domain.elements == (1, 2, 3)
    assert domain.project((1, 4, 3)) == (1, 3)
    assert 4 not in domain
    assert len(domain) == 3


def test_item_domain_identity_values(market_catalog):
    domain = Domain.items(market_catalog)
    assert domain.element_value(5) == 5
    assert domain.element_values((1, 2)) == frozenset({1, 2})


def test_item_domain_unknown_element(market_catalog):
    domain = Domain.items(market_catalog, subset=[1, 2])
    with pytest.raises(DataError):
        domain.element_value(5)


def test_derived_type_domain_projection(market_catalog):
    types = derived_type_domain(market_catalog)
    assert types.is_derived
    assert len(types) == 2  # snack, beer
    projected = types.project((1, 2, 4))
    values = types.element_values(projected)
    assert values == frozenset({"snack", "beer"})


def test_derived_type_domain_catalog_attributes(market_catalog):
    types = derived_type_domain(market_catalog)
    assert types.catalog.has_attribute("Type")
    assert types.catalog.has_attribute("Value")
    for eid in types.elements:
        assert types.catalog.value(eid, "Type") == types.element_value(eid)


def test_derived_domain_ignores_foreign_items(market_catalog):
    types = derived_type_domain(market_catalog)
    assert types.project((999,)) == ()


def test_derived_domain_custom_attribute():
    catalog = ItemCatalog({"Brand": {1: "x", 2: "y", 3: "x"}})
    brands = derived_type_domain(catalog, attribute="Brand", name="Brands")
    assert brands.name == "Brands"
    assert len(brands) == 2
    assert brands.project((1, 3)) == brands.project((1,))
