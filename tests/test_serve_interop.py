"""Serve-layer / backend interop: backend choice never leaks into caches.

The fingerprint module documents (and this file proves) that the
counting ``backend`` is *excluded* from every cache identity: all
backends are bit-identical on answers — the backend differential suite
is the evidence — so an answer mined by one backend may be served to a
query requesting another.  Concretely:

* ``options_fingerprint`` / ``result_key`` ignore a ``backend`` option;
* a result cached by a cold hybrid run is a **result-cache hit** for a
  request carrying the bitmap (or sharded-bitmap, or vertical) backend,
  and vice versa, with answers and full counters bit-identical;
* skeletons built by a bitmap-backed batch run replay through
  :class:`~repro.serve.skeleton.SupportOracle` bit-identically to a
  cold hybrid optimizer run — including for a sibling query served
  warm from another backend's skeletons.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.mining.backends import BitmapBackend, make_backend
from repro.serve import QueryService
from repro.serve.fingerprint import options_fingerprint, result_key
from tests.test_serve_differential import (
    ANSWER_COUNTERS,
    WORKLOADS,
    _answers,
)

#: Backend specs exercised against caches warmed by a different backend.
CROSS_BACKENDS = ["bitmap", "parallel:2:bitmap", "vertical"]


def test_fingerprints_ignore_backend_choice():
    options_with = {"backend": "bitmap", "dovetail": True}
    options_without = {"dovetail": True}
    assert options_fingerprint(options_with) == options_fingerprint(
        options_without
    )
    workload = WORKLOADS["quickstart"]()
    cfq = workload.cfq()
    assert result_key(cfq, workload.db, options_with) == result_key(
        cfq, workload.db, options_without
    )
    # ... while a genuinely result-affecting option does move the key.
    assert options_fingerprint({"dovetail": False}) != options_fingerprint(
        options_without
    )


@pytest.mark.parametrize("spec", CROSS_BACKENDS)
def test_result_cached_by_hybrid_serves_other_backends(spec):
    """Cold hybrid run populates the cache; a request carrying any other
    backend hits it and receives the bit-identical answer."""
    workload = WORKLOADS["quickstart"]()
    cfq = workload.cfq()
    service = QueryService()
    cold = service.execute(workload.db, cfq)
    assert cold.cache_info["source"] == "cold"
    warm = service.execute(workload.db, cfq, backend=make_backend(spec))
    assert warm.cache_info["source"] == "result-cache", spec
    assert _answers(warm) == _answers(cold), spec
    assert warm.counters.as_dict() == cold.counters.as_dict(), spec


def test_result_cached_by_bitmap_serves_hybrid():
    """The reverse direction: a bitmap-backed cold run is a cache hit
    for the default (hybrid) request."""
    workload = WORKLOADS["fig8b"]()
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(workload.db)  # cold hybrid
    service = QueryService()
    cold = service.execute(workload.db, cfq, backend=BitmapBackend())
    assert cold.cache_info["source"] == "cold"
    warm = service.execute(workload.db, cfq)
    assert warm.cache_info["source"] == "result-cache"
    assert _answers(warm) == _answers(cold) == _answers(baseline)
    # Warm answers replay the *bitmap* run's counters verbatim — the
    # cache stores whatever the cold run metered; only the answer-bearing
    # fields are backend-invariant.
    assert warm.counters.as_dict() == cold.counters.as_dict()
    warm_counts = warm.counters.as_dict()
    hybrid_counts = baseline.counters.as_dict()
    for fld in ANSWER_COUNTERS:
        assert warm_counts[fld] == hybrid_counts[fld], fld


@pytest.mark.parametrize("name", ["quickstart", "fig8b"])
def test_bitmap_batch_skeleton_replay_matches_cold_hybrid(name):
    """A bitmap-backed batch builds skeletons via the shared scan and
    replays each query through ``SupportOracle`` — bit-identical on
    answers and answer-bearing counters to a cold hybrid run."""
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(workload.db)

    service = QueryService()
    report = service.execute_batch(
        workload.db, [cfq], backend=BitmapBackend()
    )
    (item,) = report.items
    assert item.source == "skeleton", name
    served = item.result
    assert _answers(served) == _answers(baseline), name
    served_counts = served.counters.as_dict()
    cold_counts = baseline.counters.as_dict()
    for fld in ANSWER_COUNTERS:
        assert served_counts[fld] == cold_counts[fld], (name, fld)
    assert (
        served.counters.snapshot()["support_counted"]
        == baseline.counters.snapshot()["support_counted"]
    ), name


def test_skeletons_built_by_bitmap_serve_sibling_query_on_hybrid():
    """Skeletons warmed by a bitmap batch serve a previously unseen
    sibling query requested with the default backend — the skeleton
    tier, like the result cache, is backend-agnostic."""
    workload = WORKLOADS["quickstart"]()
    cfq = workload.cfq()
    scale = (
        (lambda s: {v: x * 1.5 for v, x in s.items()})
        if isinstance(workload.minsup, dict)
        else (lambda s: s * 1.5)
    )
    sibling = workload.cfq(
        constraints=workload.constraints[:1], minsup=scale(workload.minsup)
    )
    baseline = CFQOptimizer(sibling).execute(workload.db)

    service = QueryService()
    service.execute_batch(workload.db, [cfq], backend=BitmapBackend())
    served = service.execute(workload.db, sibling)
    assert served.cache_info["source"] == "skeleton"
    assert _answers(served) == _answers(baseline)
