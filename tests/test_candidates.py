"""Candidate generation: the apriori-gen join + prune."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.candidates import generate_pairs, join_and_prune


def test_generate_pairs_all():
    assert generate_pairs([1, 2, 3]) == [(1, 2), (1, 3), (2, 3)]


def test_generate_pairs_admission():
    # Only pairs whose lower-ranked element is < 2 (a bucket of ranks {0,1}).
    pairs = generate_pairs([0, 1, 2, 3], lambda a, b: a < 2)
    assert (2, 3) not in pairs
    assert (0, 3) in pairs and (1, 2) in pairs


def test_join_and_prune_classic_example():
    # The textbook apriori-gen example: L3 = {abc, abd, acd, ace, bcd};
    # join gives abcd and acde; prune removes acde (cde missing).
    frequent = {(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)}
    candidates = join_and_prune(frequent, 4)
    assert sorted(candidates) == [(1, 2, 3, 4)]


def test_join_and_prune_rejects_small_k():
    with pytest.raises(ValueError):
        join_and_prune({(1, 2)}, 2)


def test_subset_gate_skips_ungated_subsets():
    # Without the gate, (2,3) missing kills the candidate; with a gate
    # that only requires subsets containing element 1, it survives.
    frequent = {(1, 2), (1, 3)}
    assert join_and_prune(frequent, 3) == []
    gated = join_and_prune(frequent, 3, subset_gate=lambda s: 1 in s)
    assert gated == [(1, 2, 3)]


@settings(max_examples=50, deadline=None)
@given(
    sets=st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        max_size=20,
    )
)
def test_join_prune_is_exactly_the_closure(sets):
    """Candidates are exactly the 4-sets all of whose 3-subsets are in
    the given frequent collection (classic prune, rank space)."""
    frequent = {tuple(sorted(set(t))) for t in sets if len(set(t)) == 3}
    candidates = set(join_and_prune(frequent, 4))
    universe = sorted({e for s in frequent for e in s})
    expected = {
        combo
        for combo in combinations(universe, 4)
        if all(sub in frequent for sub in combinations(combo, 3))
    }
    assert candidates == expected
