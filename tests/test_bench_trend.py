"""Trend-record gate logic (repro.bench.trend).

The benchmark that writes ``BENCH_8.json`` lives in ``benchmarks/``;
this file pins the gate itself: direction-aware 20% thresholds,
newest-prior selection by numeric suffix (not lexicographic), and the
soft pass for a line's first record.
"""

import pytest

from repro.bench.trend import (
    Regression,
    TrendRecord,
    bench_index,
    compare_records,
    find_prior,
    gate,
    main,
)


def _record(label, **metrics):
    record = TrendRecord(label=label)
    for name, (value, direction) in metrics.items():
        record.add(name, value, direction=direction)
    return record


def test_direction_aware_regressions():
    prior = _record(
        "old", qps=(1000.0, "higher"), p99=(0.010, "lower")
    )
    # qps -25% and p99 +50%: both regress.
    bad = _record("new", qps=(750.0, "higher"), p99=(0.015, "lower"))
    names = {r.name for r in compare_records(bad, prior)}
    assert names == {"p99", "qps"}
    # qps -10% and p99 +15%: inside the 20% allowance.
    ok = _record("new", qps=(900.0, "higher"), p99=(0.0115, "lower"))
    assert compare_records(ok, prior) == []
    # Improvements never flag, however large.
    better = _record("new", qps=(9000.0, "higher"), p99=(0.0001, "lower"))
    assert compare_records(better, prior) == []


def test_threshold_is_exclusive_and_tunable():
    prior = _record("old", qps=(1000.0, "higher"))
    exactly_20 = _record("new", qps=(800.0, "higher"))
    assert compare_records(exactly_20, prior) == []  # >, not >=
    assert compare_records(exactly_20, prior, threshold=0.1) != []


def test_new_and_retired_metrics_never_flag():
    prior = _record("old", retired=(5.0, "higher"))
    current = _record("new", brand_new=(1.0, "higher"))
    assert compare_records(current, prior) == []


def test_regression_describe_is_directional():
    drop = Regression("qps", current=700.0, prior=1000.0, change=0.3,
                      direction="higher", unit="1/s")
    assert "dropped 30.0%" in drop.describe()
    rise = Regression("p99", current=0.015, prior=0.01, change=0.5,
                      direction="lower", unit="s")
    assert "rose 50.0%" in rise.describe()


def test_record_round_trip_and_schema(tmp_path):
    record = _record("PR8", qps=(1234.5, "higher"), p99=(0.002, "lower"))
    record.meta["note"] = "test"
    path = str(tmp_path / "BENCH_8.json")
    record.write(path)
    loaded = TrendRecord.load(path)
    assert loaded.label == "PR8"
    assert loaded.meta == {"note": "test"}
    assert loaded.metrics == record.metrics


def test_load_rejects_foreign_documents(tmp_path):
    path = tmp_path / "BENCH_1.json"
    path.write_text('{"schema": "something.else"}')
    with pytest.raises(ValueError, match="not a trend record"):
        TrendRecord.load(str(path))


def test_invalid_direction_rejected():
    with pytest.raises(ValueError, match="direction"):
        _record("x", qps=(1.0, "sideways"))


def test_find_prior_orders_numerically_not_lexicographically(tmp_path):
    for n in (2, 9, 10):
        _record(f"PR{n}", qps=(100.0 + n, "higher")).write(
            str(tmp_path / f"BENCH_{n}.json")
        )
    (tmp_path / "BENCH_notes.txt").write_text("ignored")
    current = str(tmp_path / "BENCH_11.json")
    _record("PR11", qps=(50.0, "higher")).write(current)
    # Lexicographic order would pick BENCH_9; numeric picks BENCH_10.
    assert find_prior(current) == str(tmp_path / "BENCH_10.json")
    assert bench_index("BENCH_10.json") == 10
    assert bench_index("BENCH_x.json") is None


def test_gate_soft_passes_on_first_record(tmp_path):
    current = str(tmp_path / "BENCH_1.json")
    _record("PR1", qps=(100.0, "higher")).write(current)
    regressions, prior = gate(current)
    assert regressions == [] and prior is None
    assert main([current]) == 0


def test_gate_fails_on_regression_and_passes_within_threshold(tmp_path):
    _record("PR1", qps=(1000.0, "higher")).write(
        str(tmp_path / "BENCH_1.json")
    )
    bad = str(tmp_path / "BENCH_2.json")
    _record("PR2", qps=(700.0, "higher")).write(bad)
    regressions, prior = gate(bad)
    assert prior == str(tmp_path / "BENCH_1.json")
    assert [r.name for r in regressions] == ["qps"]
    assert main([bad]) == 1
    assert main([bad, "--threshold", "0.5"]) == 0


def test_declared_noise_band_widens_one_metric_only():
    prior = _record(
        "PR1", speedup=(9.0, "higher"), qps=(1000.0, "higher")
    )
    current = TrendRecord(label="PR2")
    # 40% down, inside the declared 50% band for THIS metric...
    current.add("speedup", 5.4, direction="higher", noise=0.5)
    # ...which must not leak onto undeclared metrics: 40% down flags.
    current.add("qps", 600.0, direction="higher")
    regressions = compare_records(current, prior)
    assert [r.name for r in regressions] == ["qps"]
    # Past its own band the noisy metric still flags.
    current.add("speedup", 4.0, direction="higher", noise=0.5)
    assert {r.name for r in compare_records(current, prior)} == {
        "speedup", "qps"
    }


def test_noise_band_from_either_record_counts(tmp_path):
    prior = TrendRecord(label="PR1")
    prior.add("speedup", 9.0, direction="higher", noise=0.5)
    current = _record("PR2", speedup=(5.4, "higher"))
    # The *prior* record declared the band; the comparison honors it.
    assert compare_records(current, prior) == []
    # And the declaration survives a JSON round trip.
    path = str(tmp_path / "BENCH_1.json")
    prior.write(path)
    assert TrendRecord.load(path).metrics["speedup"].noise == 0.5


def test_negative_noise_rejected():
    record = TrendRecord(label="PR1")
    with pytest.raises(ValueError):
        record.add("speedup", 2.0, noise=-0.1)
