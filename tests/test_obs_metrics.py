"""Metrics-registry contracts: key escaping (S1) and merging (S2).

The flattened instrument key ``name{k=v,...}`` must be *injective* —
before escaping existed, ``inc("x", q="a=1,b")`` and two-label
``inc("x", q="a", b="1")``-style calls could collide on the same
rendered key, silently summing unrelated series.  ``parse_key`` must
invert the rendering exactly; ``merge`` must fold counters additively,
gauges last-write, histograms bucket-exactly.
"""

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    _key,
    parse_key,
)


# ----------------------------------------------------------------------
# S1: label rendering and the parse_key inverse
# ----------------------------------------------------------------------
def test_key_is_plain_for_unlabeled_and_sorted_for_labeled():
    assert _key("candidates", {}) == "candidates"
    assert _key("candidates", {"var": "S", "level": 2}) == (
        "candidates{level=2,var=S}"
    )


def test_structural_characters_are_escaped_and_keys_stay_injective():
    """The regression that motivated the escaping: distinct label sets
    rendering to identical keys."""
    ambiguous_one = _key("x", {"q": "a=1,b"})
    ambiguous_two = _key("x", {"b": "1", "q": "a"})
    assert ambiguous_one != ambiguous_two
    assert parse_key(ambiguous_one) == ("x", {"q": "a=1,b"})
    assert parse_key(ambiguous_two) == ("x", {"b": "1", "q": "a"})


@pytest.mark.parametrize(
    "labels",
    [
        {"q": "a=b"},
        {"q": "a,b"},
        {"q": "{(S, T) | S.Type = T.Type}"},
        {"q": "back\\slash"},
        {"q": "}{=,\\"},
        {"weird=key": "value"},
        {"q": "", "r": "non-empty"},
        {"unicode": "préfix—suffix"},
    ],
)
def test_parse_key_inverts_rendering(labels):
    name, parsed = parse_key(_key("metric", labels))
    assert name == "metric"
    assert parsed == {str(k): str(v) for k, v in labels.items()}


def test_registry_separates_hostile_label_series():
    registry = MetricsRegistry()
    registry.inc("x", 1, q="a=1,b")
    registry.inc("x", 10, b="1", q="a")
    assert registry.counter("x", q="a=1,b") == 1
    assert registry.counter("x", b="1", q="a") == 10
    assert len(registry.counters) == 2


def test_parse_key_on_unlabeled_and_odd_inputs():
    assert parse_key("plain") == ("plain", {})
    assert parse_key("name{}") == ("name", {})
    # A trailing brace with no opening brace is not a label block.
    assert parse_key("odd}") == ("odd}", {})


# ----------------------------------------------------------------------
# S2: merge semantics
# ----------------------------------------------------------------------
def _shard(counter, gauge, observations):
    registry = MetricsRegistry()
    registry.inc("shard_tuples", counter, var="S")
    registry.set_gauge("last_level", gauge, var="S")
    for value in observations:
        registry.observe("shard_seconds", value, var="S")
    return registry


def test_merge_counters_add_gauges_last_write_histograms_fold():
    run = MetricsRegistry()
    run.merge(_shard(100, 2, [0.1, 0.2]))
    run.merge(_shard(50, 3, [0.4]))
    assert run.counter("shard_tuples", var="S") == 150
    assert run.gauge("last_level", var="S") == 3
    hist = run.histogram("shard_seconds", var="S")
    assert hist.count == 3
    assert hist.total == pytest.approx(0.7)


def test_merge_copies_histograms_never_aliases():
    shard = _shard(1, 1, [0.5])
    run = MetricsRegistry()
    run.merge(shard)
    shard.observe("shard_seconds", 9.0, var="S")
    assert run.histogram("shard_seconds", var="S").count == 1
    assert shard.histogram("shard_seconds", var="S").count == 2


def test_merge_returns_self_and_chains():
    run = MetricsRegistry()
    assert run.merge(_shard(1, 1, [])) is run


def test_state_round_trip_preserves_merge_behavior():
    registry = _shard(7, 4, [0.01, 0.02, 0.03])
    restored = MetricsRegistry.from_state(registry.to_state())
    assert restored.counters == registry.counters
    assert restored.gauges == registry.gauges
    assert restored.histogram("shard_seconds", var="S") == (
        registry.histogram("shard_seconds", var="S")
    )
    # The restored registry keeps observing and merging exactly.
    restored.observe("shard_seconds", 0.04, var="S")
    assert restored.histogram("shard_seconds", var="S").count == 4


def test_null_metrics_merge_is_inert():
    assert NULL_METRICS.merge(_shard(5, 5, [1.0])) is NULL_METRICS
    assert NULL_METRICS.as_dict() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    assert NULL_METRICS.to_state() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
