"""Corrupt on-disk state: quarantined, never re-read, never wrong.

Unlike ``test_fault_matrix.py`` (which injects faults into live I/O),
this file corrupts the *bytes on disk* directly — bit-flips that keep
the JSON parseable (caught only by the integrity checksum), truncation,
and zero-length files — then proves a **fresh** service or checkpoint
manager (a new process reloading a dirty directory) quarantines the
file, falls through to cold execution bit-identically, and never reads
the quarantined copy again.
"""

import json
import os
from functools import lru_cache

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.db.stats import OpCounters
from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CountEvent,
)
from repro.serve import QueryService

WORKLOAD = quickstart_workload(n_transactions=120)
MINSUP = 0.03


@lru_cache(maxsize=None)
def _cold_answer():
    result = CFQOptimizer(WORKLOAD.cfq(minsup=MINSUP)).execute(WORKLOAD.db)
    return _answer(result)


def _answer(result):
    return {
        "frequent_valid": {
            var: tuple(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": tuple(result.pairs(limit=None)),
        "bounds": {
            key: tuple(history)
            for key, history in result.raw.bound_histories.items()
        },
    }


def _populated_cache_dir(tmp_path):
    cache_dir = str(tmp_path / "cache")
    service = QueryService(cache_dir=cache_dir, disk_backoff_seconds=0.0)
    result = service.execute(WORKLOAD.db, WORKLOAD.cfq(minsup=MINSUP))
    assert result.status == "complete"
    [artifact] = (tmp_path / "cache").glob("*.json")
    return cache_dir, artifact


def _bit_flip_a_digit(path):
    """Flip one support digit, keeping the JSON parseable: only the
    integrity checksum can catch this."""
    text = path.read_text()
    document = json.loads(text)
    snapshot = document["counters"]
    key = next(k for k, v in snapshot.items() if isinstance(v, int))
    snapshot[key] = snapshot[key] + 1
    path.write_text(json.dumps(document))


CORRUPTIONS = {
    "bit-flip": _bit_flip_a_digit,
    "truncate": lambda path: path.write_text(path.read_text()[: len(
        path.read_text()) // 2]),
    "zero-length": lambda path: path.write_text(""),
    "not-json": lambda path: path.write_text("!!not json!!"),
    "wrong-schema": lambda path: path.write_text(
        '{"schema": "something.else", "version": 1}'
    ),
}


@pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
def test_fresh_service_quarantines_corrupt_artifacts(tmp_path, corruption):
    cache_dir, artifact = _populated_cache_dir(tmp_path)
    CORRUPTIONS[corruption](artifact)

    # A fresh process: new service over the dirty cache dir.
    service = QueryService(cache_dir=cache_dir, disk_backoff_seconds=0.0)
    result = service.execute(WORKLOAD.db, WORKLOAD.cfq(minsup=MINSUP))
    assert result.status == "complete"
    assert _answer(result) == _cold_answer()
    assert result.cache_info["source"] == "cold"
    assert service.stats.quarantined == 1
    quarantined = artifact.with_suffix(".json.quarantined")
    assert quarantined.exists()
    kinds = [e["kind"] for e in service.telemetry.journal.tail()]
    assert "result_quarantine" in kinds

    # The cold run re-stored a good artifact; yet another fresh process
    # warm-serves from it and never touches the quarantined copy.
    corrupt_bytes = quarantined.read_text()
    reloaded = QueryService(cache_dir=cache_dir, disk_backoff_seconds=0.0)
    warm = reloaded.execute(WORKLOAD.db, WORKLOAD.cfq(minsup=MINSUP))
    assert _answer(warm) == _cold_answer()
    assert warm.cache_info["source"] == "result-cache"
    assert warm.cache_info["tier"] == "disk"
    assert reloaded.stats.quarantined == 0
    assert quarantined.read_text() == corrupt_bytes  # untouched


def test_invalidate_sweeps_quarantined_files_too(tmp_path):
    cache_dir, artifact = _populated_cache_dir(tmp_path)
    CORRUPTIONS["truncate"](artifact)
    service = QueryService(cache_dir=cache_dir, disk_backoff_seconds=0.0)
    service.execute(WORKLOAD.db, WORKLOAD.cfq(minsup=MINSUP))
    assert list((tmp_path / "cache").glob("*.quarantined"))
    service.invalidate(WORKLOAD.db)
    assert not list((tmp_path / "cache").glob("*"))


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def _saved_checkpoint(tmp_path, fp):
    manager = CheckpointManager(str(tmp_path), fp)
    event = CountEvent(var="S", level=1, candidates_in=2,
                       supports=(((1,), 5), ((2,), 3)))
    path = manager.save(Checkpoint(
        fingerprint=fp, events=(event,),
        counters=OpCounters().snapshot(),
        levels_completed={"S": 1},
    ))
    assert path is not None
    return manager


def test_checkpoint_bit_flip_is_caught_by_integrity(tmp_path):
    """A flipped support count keeps the JSON valid — only the
    checksum refuses it; the run quarantines and starts fresh."""
    fp = "a" * 64
    _saved_checkpoint(tmp_path, fp)
    path = tmp_path / "checkpoint.json"
    document = json.loads(path.read_text())
    document["events"][0]["supports"][0][1] += 1  # 5 -> 6
    path.write_text(json.dumps(document))

    fresh = CheckpointManager(str(tmp_path), fp)
    assert fresh.load_for_resume() is None
    assert fresh.quarantined == 1
    assert (tmp_path / "checkpoint.json.quarantined").exists()
    assert not path.exists()
    # Never re-read: the next resume just starts fresh again.
    assert fresh.load_for_resume() is None


@pytest.mark.parametrize("corruption", ["truncate", "zero-length",
                                        "not-json"])
def test_corrupt_checkpoints_are_quarantined(tmp_path, corruption):
    fp = "b" * 64
    _saved_checkpoint(tmp_path, fp)
    CORRUPTIONS[corruption](tmp_path / "checkpoint.json")
    fresh = CheckpointManager(str(tmp_path), fp)
    assert fresh.load_for_resume() is None
    assert fresh.quarantined == 1
    assert (tmp_path / "checkpoint.json.quarantined").exists()


def test_fingerprint_mismatch_still_refuses_loudly(tmp_path):
    """A *valid* checkpoint of a different run is not corruption: it is
    refused with an explanation, never quarantined silently."""
    from repro.errors import ExecutionError

    _saved_checkpoint(tmp_path, "c" * 64)
    other = CheckpointManager(str(tmp_path), "d" * 64)
    with pytest.raises(ExecutionError, match="different run"):
        other.load_for_resume()
    assert other.quarantined == 0
    assert (tmp_path / "checkpoint.json").exists()


def test_resume_after_quarantine_is_bit_identical(tmp_path):
    """End to end: a corrupted checkpoint directory must not poison a
    resumed run — it restarts cold and matches the pristine answer."""
    cfq = WORKLOAD.cfq(minsup=MINSUP)
    baseline = CFQOptimizer(cfq).execute(WORKLOAD.db)
    first = CFQOptimizer(cfq).execute(
        WORKLOAD.db, checkpoint_dir=str(tmp_path)
    )
    assert first.status == "complete"
    path = tmp_path / "checkpoint.json"
    if path.exists():
        CORRUPTIONS["truncate"](path)
    resumed = CFQOptimizer(cfq).execute(
        WORKLOAD.db, checkpoint_dir=str(tmp_path), resume=True
    )
    assert resumed.status == "complete"
    assert _answer(resumed) == _answer(baseline)
