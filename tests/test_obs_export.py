"""Exporter contracts: Prometheus exposition and Chrome trace JSON.

The exporters must produce output their own validators accept (CI runs
``lint_prometheus`` / ``validate_chrome_trace`` over real exports), and
label escaping must survive the full path: instrument key → registry →
``parse_key`` → exposition text.
"""

import json

import pytest

from repro.obs.export import (
    lint_prometheus,
    render_chrome_trace,
    render_prometheus,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry, parse_key
from repro.obs.trace import Tracer


def _populated_registry():
    registry = MetricsRegistry()
    registry.inc("serves", 3, outcome="warm-memory")
    registry.inc("serves", 1, outcome="cold")
    registry.set_gauge("cache_hit_ratio", 0.75)
    registry.set_gauge("cache_entries", 4, tier="result")
    for value in (0.001, 0.002, 0.004, 0.010):
        registry.observe("serve_seconds", value, outcome="warm-memory")
    return registry


def test_prometheus_output_passes_own_lint():
    text = render_prometheus(_populated_registry())
    assert lint_prometheus(text) == []


def test_prometheus_families_and_suffixes():
    text = render_prometheus(_populated_registry())
    assert "# TYPE repro_serves_total counter" in text
    assert 'repro_serves_total{outcome="warm-memory"} 3.0' in text
    assert "# TYPE repro_cache_hit_ratio gauge" in text
    assert "# TYPE repro_serve_seconds summary" in text
    assert 'repro_serve_seconds{outcome="warm-memory",quantile="0.5"}' in text
    assert 'repro_serve_seconds_sum{outcome="warm-memory"}' in text
    assert 'repro_serve_seconds_count{outcome="warm-memory"} 4' in text


def test_prometheus_accepts_serialized_snapshots():
    registry = _populated_registry()
    live = render_prometheus(registry)
    from_dict = render_prometheus(registry.as_dict())
    assert from_dict == live
    # to_state() histograms lack quantile summaries but keep sum/count —
    # the render degrades gracefully and still lints clean.
    from_state = render_prometheus(registry.to_state())
    assert lint_prometheus(from_state) == []
    assert "repro_serve_seconds_count" in from_state


def test_prometheus_escapes_hostile_label_values():
    registry = MetricsRegistry()
    hostile = 'va"l\\ue\nwith={braces},'
    registry.inc("lookups", 1, key=hostile)
    # The instrument key itself survives parse_key (satellite S1)...
    (key,) = registry.counters
    name, labels = parse_key(key)
    assert name == "lookups" and labels == {"key": hostile}
    # ...and the exposition text both lints clean and decodes back to
    # the original value under Prometheus unescaping rules.
    text = render_prometheus(registry)
    assert lint_prometheus(text) == []
    (sample,) = [
        line for line in text.splitlines() if line.startswith("repro_lookups")
    ]
    rendered = sample[sample.index('key="') + 5:sample.rindex('"')]
    decoded = (
        rendered.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )
    assert decoded == hostile


def test_prometheus_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""
    assert lint_prometheus("") == []


def test_lint_catches_real_problems():
    assert lint_prometheus("repro_orphan 1.0") == [
        "line 1: sample 'repro_orphan' has no TYPE header"
    ]
    assert any(
        "malformed TYPE" in p
        for p in lint_prometheus("# TYPE repro_x wrongkind\n")
    )
    bad_value = "# TYPE repro_x gauge\nrepro_x abc"
    assert any("non-numeric" in p for p in lint_prometheus(bad_value))


def _traced_run():
    tracer = Tracer()
    with tracer.span("execute", query="q1"):
        with tracer.span("count", var="S", level=1):
            tracer.event("prune", dropped=3)
        with tracer.span("count", var="S", level=2):
            pass
    return tracer


def test_chrome_trace_validates_and_has_expected_events():
    doc = render_chrome_trace(_traced_run())
    assert validate_chrome_trace(doc) == []
    assert validate_chrome_trace(json.dumps(doc)) == []

    events = doc["traceEvents"]
    assert events[0]["ph"] == "M"  # process_name metadata first
    complete = [e for e in events if e["ph"] == "X"]
    assert [e["name"] for e in complete] == ["execute", "count", "count"]
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["prune"]
    assert instants[0]["args"]["dropped"] == 3
    # Span attributes ride in args; durations are microseconds.
    root = complete[0]
    assert root["args"]["query"] == "q1"
    assert root["dur"] >= sum(e["dur"] for e in complete[1:]) - 1e-3


def test_chrome_trace_accepts_serialized_trace_block():
    tracer = _traced_run()
    from_tracer = render_chrome_trace(tracer)
    from_block = render_chrome_trace(tracer.to_dict())
    assert from_block == from_tracer
    from_list = render_chrome_trace(tracer.to_dict()["spans"])
    assert from_list == from_tracer


def test_chrome_trace_children_nest_within_parent_window():
    doc = render_chrome_trace(_traced_run())
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    root, *children = complete
    for child in children:
        assert child["ts"] >= root["ts"] - 1e-3
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3


def test_validator_catches_real_problems():
    assert validate_chrome_trace("not json")[0].startswith("not valid JSON")
    assert validate_chrome_trace({"spans": []}) == [
        "'traceEvents' must be a list"
    ]
    missing = {"traceEvents": [{"ph": "X", "ts": 1.0, "dur": 1.0}]}
    problems = validate_chrome_trace(missing)
    assert any("missing 'pid'" in p for p in problems)
    negative = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "s", "ts": -5, "dur": 1.0}
    ]}
    assert any("non-negative" in p for p in validate_chrome_trace(negative))
    unknown = {"traceEvents": [
        {"ph": "?", "pid": 1, "tid": 1, "name": "s"}
    ]}
    assert any("unknown phase" in p for p in validate_chrome_trace(unknown))
