"""Serving serialization round-trips and ``explain()``'s cache section.

Telemetry snapshots embed ``CacheStats.as_dict()`` and batch runs
serialize through ``BatchReport.as_dict()`` — both must round-trip
(satellite S3).  ``explain()`` must name the serving tier that answered
each run: memory hit, disk hit, skeleton, and cold miss all read
differently.
"""

import json

import pytest

from repro.datagen.workloads import quickstart_workload
from repro.db.stats import CacheStats
from repro.serve import QueryService


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=200)


# ----------------------------------------------------------------------
# CacheStats round-trip
# ----------------------------------------------------------------------
def test_cache_stats_round_trip_preserves_every_counter():
    stats = CacheStats(
        hits=7, misses=3, stores=4, evictions=2, expirations=1,
        invalidations=5, skeleton_hits=6, skeleton_misses=2,
        skeleton_builds=3, skeleton_refreshes=1, bytes_held=12345,
    )
    document = stats.as_dict()
    restored = CacheStats.from_dict(document)
    assert restored == stats
    assert restored.as_dict() == document
    assert restored.hit_rate == stats.hit_rate


def test_cache_stats_from_dict_ignores_derived_and_unknown_keys():
    restored = CacheStats.from_dict(
        {"hits": 2, "misses": 2, "hit_rate": 0.99, "not_a_field": 7}
    )
    assert restored.hits == 2
    assert restored.hit_rate == 0.5  # recomputed, not trusted from input
    assert not hasattr(restored, "not_a_field")


def test_cache_stats_round_trip_through_json(workload):
    service = QueryService()
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq())
    document = json.loads(json.dumps(service.stats.as_dict()))
    assert CacheStats.from_dict(document) == service.stats


# ----------------------------------------------------------------------
# BatchReport round-trip
# ----------------------------------------------------------------------
def test_batch_report_as_dict_round_trips_through_json(workload):
    service = QueryService()
    cfqs = [workload.cfq(minsup=0.03), workload.cfq(minsup=0.05)]
    report = service.execute_batch(workload.db, cfqs)
    document = json.loads(json.dumps(report.as_dict()))

    assert document["dataset_fingerprint"] == report.dataset_fingerprint
    assert document["skeleton_build_seconds"] == pytest.approx(
        report.skeleton_build_seconds, abs=1e-9
    )
    assert document["failed_domains"] == list(report.failed_domains)
    assert len(document["items"]) == 2
    for item_doc, item in zip(document["items"], report.items):
        assert item_doc["query"] == str(item.cfq)
        assert item_doc["query_fingerprint"] == item.query_fingerprint
        assert item_doc["source"] == item.source
        assert item_doc["status"] == item.result.status
        assert item_doc["wall_seconds"] == pytest.approx(
            item.wall_seconds, abs=1e-9
        )
        assert item_doc["cache_info"]["source"] == "skeleton"


# ----------------------------------------------------------------------
# explain() cache section under every hit kind
# ----------------------------------------------------------------------
def test_explain_cold_miss_names_cold_source(workload):
    service = QueryService()
    cold = service.execute(workload.db, workload.cfq())
    text = cold.explain()
    assert "cache: source cold" in text
    assert "cold wall seconds:" in text
    assert "dataset fingerprint:" in text


def test_explain_memory_hit_names_memory_tier(workload):
    service = QueryService()
    service.execute(workload.db, workload.cfq())
    warm = service.execute(workload.db, workload.cfq())
    text = warm.explain()
    assert "cache: source result-cache (memory tier)" in text
    assert "warm wall seconds:" in text


def test_explain_disk_hit_names_disk_tier(workload, tmp_path):
    cache_dir = str(tmp_path / "cache")
    QueryService(cache_dir=cache_dir).execute(workload.db, workload.cfq())
    fresh = QueryService(cache_dir=cache_dir)
    warm = fresh.execute(workload.db, workload.cfq())
    text = warm.explain()
    assert "cache: source result-cache (disk tier)" in text


def test_explain_skeleton_answer_names_skeleton(workload):
    service = QueryService()
    service.prepare(workload.db, [workload.cfq()])
    result = service.execute(workload.db, workload.cfq())
    assert result.cache_info["source"] == "skeleton"
    text = result.explain()
    assert "cache: source skeleton" in text
    assert "(memory tier)" not in text and "(disk tier)" not in text


def test_explain_without_service_has_no_cache_section(workload):
    from repro.core.optimizer import CFQOptimizer

    result = CFQOptimizer(workload.cfq()).execute(workload.db)
    assert "cache: source" not in result.explain()
