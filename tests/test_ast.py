"""Unit tests for the constraint AST nodes and operators."""

import pytest

from repro.constraints.ast import (
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Const,
    SetComparison,
    SetConst,
    SetOp,
    is_onevar,
    is_twovar,
)
from repro.errors import ConstraintTypeError


@pytest.mark.parametrize(
    "op, a, b, expected",
    [
        (CmpOp.LT, 1, 2, True),
        (CmpOp.LE, 2, 2, True),
        (CmpOp.EQ, 2, 2, True),
        (CmpOp.NE, 1, 2, True),
        (CmpOp.GE, 1, 2, False),
        (CmpOp.GT, 3, 2, True),
    ],
)
def test_cmp_apply(op, a, b, expected):
    assert op.apply(a, b) is expected


def test_cmp_flip_is_involutive_on_order():
    for op in CmpOp:
        flipped = op.flipped()
        # a op b == b flipped(op) a for arbitrary samples
        for a, b in ((1, 2), (2, 2), (3, 1)):
            assert op.apply(a, b) == flipped.apply(b, a)


def test_cmp_categories():
    assert CmpOp.LT.is_le_like and CmpOp.LE.is_le_like
    assert CmpOp.GT.is_ge_like and CmpOp.GE.is_ge_like
    assert CmpOp.LT.strict and not CmpOp.LE.strict


def test_set_op_apply_matrix():
    a, b = frozenset({1, 2}), frozenset({2, 3})
    assert SetOp.OVERLAPS.apply(a, b)
    assert not SetOp.DISJOINT.apply(a, b)
    assert SetOp.SUBSET.apply(frozenset({2}), b)
    assert SetOp.NOT_SUBSET.apply(a, b)
    assert SetOp.SUPERSET.apply(b, frozenset({3}))
    assert SetOp.NOT_SUPERSET.apply(a, b)
    assert SetOp.SETEQ.apply(a, frozenset({2, 1}))
    assert SetOp.SETNEQ.apply(a, b)


def test_set_op_flip_consistent():
    samples = [
        (frozenset({1}), frozenset({1, 2})),
        (frozenset({1, 2}), frozenset({3})),
        (frozenset(), frozenset({1})),
        (frozenset({1, 2}), frozenset({1, 2})),
    ]
    for op in SetOp:
        flipped = op.flipped()
        for a, b in samples:
            assert op.apply(a, b) == flipped.apply(b, a), op


def test_comparison_variables_and_flip():
    constraint = Comparison(
        Agg("max", AttrRef("S", "A")), CmpOp.LE, Agg("min", AttrRef("T", "B"))
    )
    assert constraint.variables() == frozenset({"S", "T"})
    assert is_twovar(constraint)
    flipped = constraint.flipped()
    assert flipped.op is CmpOp.GE
    assert flipped.left == constraint.right


def test_onevar_detection():
    constraint = Comparison(Agg("sum", AttrRef("S", "A")), CmpOp.LE, Const(5))
    assert is_onevar(constraint)
    assert not is_twovar(constraint)


def test_comparison_rejects_set_operand():
    with pytest.raises(ConstraintTypeError):
        Comparison(AttrRef("S", "A"), CmpOp.LE, Const(5))


def test_comparison_rejects_constant_only():
    with pytest.raises(ConstraintTypeError):
        Comparison(Const(1), CmpOp.LE, Const(5))


def test_set_comparison_rejects_scalar_operand():
    with pytest.raises(ConstraintTypeError):
        SetComparison(Agg("max", AttrRef("S", "A")), SetOp.SUBSET, SetConst(frozenset()))


def test_set_comparison_rejects_two_constants():
    with pytest.raises(ConstraintTypeError):
        SetComparison(SetConst(frozenset({1})), SetOp.SUBSET, SetConst(frozenset()))


def test_agg_rejects_unknown_function():
    with pytest.raises(ConstraintTypeError):
        Agg("median", AttrRef("S", "A"))


def test_str_round_trips_through_parser():
    from repro.constraints.parser import parse_constraint

    for text in (
        "max(S.Price) <= min(T.Price)",
        "sum(S.Price) <= 100",
        "S.Type = {a, b}",
        "S.A ∩ T.B = ∅",
        "S.A ⊆ T.B",
    ):
        constraint = parse_constraint(text)
        assert parse_constraint(str(constraint)) == constraint
