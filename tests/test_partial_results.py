"""Partial-result semantics, degenerate inputs, and cancellation under
the parallel backend.

Complements ``test_resume_differential`` (bit-identical resume) and
``test_guard`` (guard unit behavior): here we assert what an
*interrupted* run hands back — a well-labeled ``CFQResult`` whose
partial sets are exactly the completed levels — and that the guardrail
machinery behaves on the edges: empty databases, nothing-frequent
thresholds, pooled shard cancellation, and pool teardown under faults.
"""

import random
import time
from itertools import combinations

import pytest

from repro.core.optimizer import CFQOptimizer, mine_cfq
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import DataError, RunInterrupted
from repro.mining.apriori import mine_frequent
from repro.mining.aprioriplus import apriori_plus
from repro.mining.backends import FaultInjector, ParallelBackend
from repro.mining.cap import cap_mine
from repro.obs.report import RunReport, build_run_report
from repro.runtime.guard import RunGuard

from tests.test_resume_differential import TripAfterLevels


# ----------------------------------------------------------------------
# Partial results from the optimizer
# ----------------------------------------------------------------------
def test_partial_result_covers_exactly_the_completed_levels():
    workload = quickstart_workload(n_transactions=300)
    cfq = workload.cfq()
    full = CFQOptimizer(cfq).execute(workload.db)
    partial = CFQOptimizer(cfq).execute(
        workload.db, guard=TripAfterLevels(4)
    )
    assert partial.is_partial and not full.is_partial
    trip = partial.interruption
    assert trip.reason == "cancelled"
    for var in cfq.variables:
        completed = trip.levels_completed.get(var, 0)
        assert completed >= 1
        partial_levels = partial.raw.result_for(var).frequent
        full_levels = full.raw.result_for(var).frequent
        # Every completed level is bit-identical to the full run...
        for level in range(1, completed + 1):
            assert partial_levels.get(level, {}) == full_levels.get(level, {})
        # ...and nothing deeper than completed+1 was ever absorbed.
        assert all(level <= completed + 1 for level in partial_levels)


def test_partial_pairs_are_reverified_subset_of_full_answer():
    workload = quickstart_workload(n_transactions=300)
    cfq = workload.cfq()
    full = CFQOptimizer(cfq).execute(workload.db)
    partial = CFQOptimizer(cfq).execute(workload.db, guard=TripAfterLevels(4))
    # pairs() re-verifies the 2-var constraint exactly, so partial pairs
    # are pairs of the full answer restricted to the mined levels.
    assert set(partial.pairs()) <= set(full.pairs())


def test_partial_explain_and_report_are_labeled():
    workload = quickstart_workload(n_transactions=300)
    cfq = workload.cfq()
    guard = TripAfterLevels(3)
    result = CFQOptimizer(cfq).execute(workload.db, guard=guard)
    assert result.is_partial
    text = result.explain()
    assert "PARTIAL" in text
    assert "run budgets" in text
    report = build_run_report(result)
    assert report.answers["status"] == "partial"
    assert report.interruption["reason"] == "cancelled"
    assert report.budget["consumed"]["checks"] > 0
    # The document validates and round-trips at schema v2.
    RunReport.validate(report.to_dict())
    restored = RunReport.from_dict(report.to_dict())
    assert restored.interruption == report.interruption
    assert restored.budget == report.budget


def test_deadline_trip_end_to_end():
    workload = quickstart_workload(n_transactions=300)
    result = CFQOptimizer(workload.cfq()).execute(
        workload.db, guard=RunGuard(deadline_seconds=0.0)
    )
    assert result.is_partial
    assert result.interruption.reason == "deadline"


def test_candidate_budget_trip_end_to_end():
    workload = quickstart_workload(n_transactions=300)
    result = CFQOptimizer(workload.cfq()).execute(
        workload.db, guard=RunGuard(max_candidates=10)
    )
    assert result.is_partial
    assert result.interruption.reason == "candidates"


def test_complete_run_with_guard_is_unchanged():
    """An armed guard that never trips must not perturb the answer."""
    workload = quickstart_workload(n_transactions=300)
    plain = CFQOptimizer(workload.cfq()).execute(workload.db)
    guarded = CFQOptimizer(workload.cfq()).execute(
        workload.db, guard=RunGuard(deadline_seconds=3600.0)
    )
    assert not guarded.is_partial
    assert guarded.pairs() == plain.pairs()
    assert guarded.counters.as_dict() == plain.counters.as_dict()


# ----------------------------------------------------------------------
# Partial payloads from the standalone miners
# ----------------------------------------------------------------------
def _tripped_guard():
    return RunGuard(deadline_seconds=0.0)


def test_mine_frequent_attaches_partial_lattice():
    transactions = [(1, 2, 3), (1, 2), (2, 3)] * 5
    with pytest.raises(RunInterrupted) as excinfo:
        mine_frequent(transactions, [1, 2, 3], 2, guard=_tripped_guard())
    assert excinfo.value.partial is not None


def test_apriori_plus_partial_maps_every_variable(market_db, market_domain):
    cfq = CFQ(domains={"S": market_domain, "T": market_domain}, minsup=0.2,
              constraints=["max(S.Price) <= min(T.Price)"])
    with pytest.raises(RunInterrupted) as excinfo:
        apriori_plus(market_db, cfq, guard=_tripped_guard())
    partial = excinfo.value.partial
    assert set(partial) == {"S", "T"}  # untouched vars get empty results


def test_cap_mine_attaches_partial(market_db, market_domain):
    with pytest.raises(RunInterrupted) as excinfo:
        cap_mine(
            "S", market_domain, list(market_db.transactions),
            min_count=2, guard=_tripped_guard(),
        )
    assert excinfo.value.partial is not None


# ----------------------------------------------------------------------
# Degenerate inputs (regression: must stay clean under guardrails too)
# ----------------------------------------------------------------------
def _simple_cfq(domain, minsup=0.5):
    return CFQ(domains={"S": domain, "T": domain}, minsup=minsup,
               constraints=["max(S.Price) <= min(T.Price)"])


def test_empty_database(market_domain, tmp_path):
    db = TransactionDatabase([])
    result = CFQOptimizer(_simple_cfq(market_domain)).execute(
        db, guard=RunGuard(deadline_seconds=3600.0),
        checkpoint_dir=str(tmp_path),
    )
    assert not result.is_partial
    assert result.frequent_valid("S") == {}
    assert result.pairs() == []
    # ...and a resume over the empty-run checkpoint also comes up empty.
    resumed = CFQOptimizer(_simple_cfq(market_domain)).execute(
        db, checkpoint_dir=str(tmp_path), resume=True
    )
    assert resumed.pairs() == []


def test_database_of_empty_transactions(market_domain):
    db = TransactionDatabase([()] * 8)
    result = mine_cfq(db, _simple_cfq(market_domain))
    assert result.pairs() == []


def test_zero_frequent_singletons(market_domain):
    """minsup at the whole database: no item survives level 1."""
    db = TransactionDatabase([(1,), (2,), (3,), (4,)])
    result = mine_cfq(db, _simple_cfq(market_domain, minsup=1.0))
    assert result.frequent_valid("S") == {}
    assert result.frequent_valid("T") == {}
    assert result.pairs() == []


def test_minsup_above_database_size_rejected(market_domain):
    db = TransactionDatabase([(1, 2)])
    with pytest.raises(DataError, match="minsup"):
        mine_cfq(db, _simple_cfq(market_domain, minsup=5.0))


# ----------------------------------------------------------------------
# Parallel backend: cancellation and teardown robustness
# ----------------------------------------------------------------------
def _random_level():
    rng = random.Random(11)
    transactions = [
        tuple(sorted(rng.sample(range(1, 12), rng.randint(2, 6))))
        for __ in range(40)
    ]
    candidates = list(combinations(range(1, 12), 2))[:50]
    return transactions, candidates


def test_pooled_count_cancels_on_tripped_guard():
    transactions, candidates = _random_level()
    backend = ParallelBackend(workers=2, shard_threshold=0)
    guard = RunGuard(deadline_seconds=0.0).start()
    with backend:
        with pytest.raises(RunInterrupted):
            backend.count(transactions, candidates, 2, OpCounters(), "S",
                          guard=guard)
        # Cancellation accounting + the pool was torn down (its queued
        # tasks die with it) but NOT marked broken: a resumed run may
        # re-fork it.
        assert backend.stats.cancelled_levels == 1
        assert not backend.pool_open
        assert not backend.stats.pool_broken
    assert "cancelled" in backend.stats.summary()
    assert backend.stats.as_dict()["cancelled_levels"] == 1


def test_guard_cancels_mid_hung_shard_quickly():
    """A deadline must cut through a hung worker long before the shard
    timeout would."""
    transactions, candidates = _random_level()
    backend = ParallelBackend(
        workers=2, shard_threshold=0, shard_timeout=60.0,
        fault_injector=FaultInjector("hang", {0, 1}, hang_seconds=30.0),
    )
    guard = RunGuard(deadline_seconds=0.5).start()
    start = time.monotonic()
    with backend:
        with pytest.raises(RunInterrupted):
            backend.count(transactions, candidates, 2, OpCounters(), "S",
                          guard=guard)
    assert time.monotonic() - start < 10.0
    assert backend.stats.cancelled_levels == 1


def test_unguarded_parallel_count_unaffected_by_guard_plumbing():
    transactions, candidates = _random_level()
    serial = ParallelBackend(workers=1)
    pooled = ParallelBackend(workers=2, shard_threshold=0)
    with pooled:
        got = pooled.count(transactions, candidates, 2, OpCounters(), "S",
                           guard=None)
    want = serial.count(transactions, candidates, 2, OpCounters(), "S")
    assert got == want
    assert pooled.stats.cancelled_levels == 0


def test_close_is_idempotent_and_reentrant():
    backend = ParallelBackend(workers=2, shard_threshold=0)
    transactions, candidates = _random_level()
    with backend:
        backend.count(transactions, candidates, 2, OpCounters(), "S")
    assert not backend.pool_open
    for __ in range(3):
        backend.close()  # extra closes: no error, no effect
    assert not backend.pool_open
    # A fresh scope after teardown re-forks cleanly.
    with backend:
        backend.count(transactions, candidates, 2, OpCounters(), "S")
    assert not backend.pool_open
    assert backend.stats.pool_forks == 2


def test_close_never_raises_after_worker_kills():
    """Tear down a pool whose workers were hard-killed mid-run."""
    transactions, candidates = _random_level()
    backend = ParallelBackend(
        workers=2, shard_threshold=0, shard_timeout=1.5, max_retries=0,
        fault_injector=FaultInjector("kill", {0, 1}),
    )
    with backend:
        backend.count(transactions, candidates, 2, OpCounters(), "S")
    backend.close()  # extra close on the torn-down backend
    assert not backend.pool_open


def test_shutdown_survives_raising_pool(monkeypatch):
    """terminate()/join() raising must not leak out of close()."""
    backend = ParallelBackend(workers=2, shard_threshold=0)
    backend.open()
    backend._ensure_pool()

    class ExplodingPool:
        def terminate(self):
            raise RuntimeError("already dead")

        def join(self):
            raise RuntimeError("already dead")

    backend._pool = ExplodingPool()
    backend.close()  # must swallow both
    assert not backend.pool_open


def test_shutdown_abandons_wedged_join(monkeypatch):
    """A join that never returns is abandoned after JOIN_TIMEOUT."""
    backend = ParallelBackend(workers=2, shard_threshold=0)
    backend.JOIN_TIMEOUT = 0.3
    backend.open()

    class WedgedPool:
        def terminate(self):
            pass

        def join(self):
            time.sleep(30.0)

    backend._pool = WedgedPool()
    start = time.monotonic()
    backend.close()
    assert time.monotonic() - start < 5.0
    assert not backend.pool_open
