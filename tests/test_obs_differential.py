"""Tracing must observe, never perturb: differential and overhead tests.

The observability layer's contract is that attaching a tracer changes
*nothing* about a run's answers or its deterministic op-count metering —
supports, frequent sets, counters, and bound histories are bit-identical
with tracing on and off.  A fast smoke check also bounds the no-op
tracer's overhead (the strict <3% assertion lives in
``benchmarks/test_obs_overhead.py``, outside tier-1).
"""

import time

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import (
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)
from repro.db.stats import OpCounters
from repro.mining.apriori import mine_frequent
from repro.mining.cap import cap_mine
from repro.obs.trace import NULL_TRACER, Tracer


def _snapshot(result, counters):
    raw = result.raw
    return {
        "frequent": {
            var: {
                level: dict(sets)
                for level, sets in raw.result_for(var).frequent.items()
            }
            for var in result.cfq.variables
        },
        "counters": (
            dict(counters.support_counted),
            counters.constraint_checks_singleton,
            counters.constraint_checks_larger,
            counters.subset_tests,
            counters.scans,
            counters.tuples_read,
        ),
        "bounds": dict(raw.bound_histories),
        "prune_counts": {
            var: {
                level: dict(reasons)
                for level, reasons in raw.result_for(var).prune_counts.items()
            }
            for var in result.cfq.variables
        },
    }


@pytest.mark.parametrize(
    "workload_fn,kwargs",
    [
        (quickstart_workload, {"n_transactions": 200}),
        (fig8b_workload, {"type_overlap_pct": 40.0, "n_transactions": 200,
                          "n_items": 100}),
        (jmax_workload, {"t_price_mean": 600.0, "n_transactions": 200,
                         "core_size": 10}),
    ],
    ids=["quickstart", "fig8b", "jmax"],
)
def test_tracing_does_not_change_results(workload_fn, kwargs):
    workload = workload_fn(**kwargs)
    cfq = workload.cfq()

    counters_off = OpCounters()
    off = CFQOptimizer(cfq).execute(workload.db, counters=counters_off)
    counters_on = OpCounters()
    on = CFQOptimizer(cfq).execute(
        workload.db, counters=counters_on, tracer=Tracer()
    )

    assert _snapshot(on, counters_on) == _snapshot(off, counters_off)


def test_tracing_does_not_change_cap_mine():
    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    var = cfq.variables[0]
    domain = cfq.domains[var]
    projected = [domain.project(t) for t in workload.db.transactions]
    min_count = workload.db.min_count(cfq.minsup_for(var))
    constraints = cfq.onevar_for(var)

    off = cap_mine(var, domain, projected, min_count, constraints)
    on = cap_mine(var, domain, projected, min_count, constraints,
                  tracer=Tracer())
    assert on.frequent == off.frequent
    assert on.counted_per_level == off.counted_per_level
    assert on.prune_counts == off.prune_counts


def test_tracing_does_not_change_mine_frequent():
    workload = quickstart_workload(n_transactions=150)
    transactions = workload.db.transactions
    elements = sorted(workload.db.item_universe())

    off = mine_frequent(transactions, elements, min_count=5)
    on = mine_frequent(transactions, elements, min_count=5, tracer=Tracer())
    assert on.frequent == off.frequent
    assert on.counted_per_level == off.counted_per_level


def test_null_tracer_overhead_smoke():
    """The default (disabled) tracer must be close to free.  This smoke
    check uses a generous 25% bound so it never flakes under CI load;
    the strict <3% assertion runs in benchmarks/test_obs_overhead.py."""
    workload = quickstart_workload(n_transactions=300)
    cfq = workload.cfq()

    def run_once(tracer):
        CFQOptimizer(cfq).execute(workload.db, tracer=tracer)

    # Warm caches, then min-of-repeats both ways.
    run_once(None)
    baseline = min(
        _timed(run_once, None) for __ in range(3)
    )
    with_null = min(
        _timed(run_once, NULL_TRACER) for __ in range(3)
    )
    assert with_null <= baseline * 1.25


def _timed(fn, arg):
    start = time.perf_counter()
    fn(arg)
    return time.perf_counter() - start
