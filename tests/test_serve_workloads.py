"""Randomized cache workloads: no stale answer ever escapes the service.

Hypothesis drives one shared :class:`QueryService` through random event
sequences — queries interleaved across several *mutated variants* of a
dataset (one dropped transaction, one duplicated, a reshuffled copy:
similar content, distinct fingerprints — exactly the aliasing a
mis-keyed cache would confuse), explicit invalidations, wholesale
clears, fake-clock jumps past the TTL, and **dataset churn**: a live
database evolved through ``append``/``delete`` deltas whose caches the
service migrates incrementally via ``apply_delta``.  After every query
event the served answer is compared against an independently computed
cold answer for that exact (dataset, query); any stale or cross-dataset
serving fails the property.  Every event is ``note()``-d, so a shrunk
failure reads as a minimal event log.
"""

import random
from functools import lru_cache

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.db.transactions import TransactionDatabase
from repro.serve import QueryService

WORKLOAD = quickstart_workload(n_transactions=120)

_BASE = list(WORKLOAD.db.transactions)
#: Dataset variants: index 0 is the original; the others are the
#: near-miss mutations a content-keyed cache must keep apart.
DATASETS = (
    WORKLOAD.db,
    TransactionDatabase(_BASE[1:]),            # one transaction dropped
    TransactionDatabase(_BASE + [_BASE[0]]),   # one duplicated
    TransactionDatabase(list(reversed(_BASE))),  # reordered (order-sensitive!)
)

MINSUPS = (0.03, 0.06)
CONSTRAINT_SETS = (
    tuple(WORKLOAD.constraints),
    tuple(WORKLOAD.constraints[:2]),
)


@lru_cache(maxsize=None)
def _cold_answer_content(transactions, minsup, constraints):
    """Cold oracle keyed by dataset *content*, so churned databases
    (whose identity is their transaction tuple) share the cache."""
    cfq = WORKLOAD.cfq(constraints=list(constraints), minsup=minsup)
    db = TransactionDatabase([list(t) for t in transactions])
    result = CFQOptimizer(cfq).execute(db)
    return {
        "frequent_valid": {
            var: tuple(result.frequent_valid(var).items())
            for var in cfq.variables
        },
        "pairs": tuple(result.pairs(limit=None)),
    }


def _cold_answer(db_index, minsup, constraints):
    return _cold_answer_content(
        DATASETS[db_index].transactions, minsup, constraints
    )


def _served_answer(result):
    return {
        "frequent_valid": {
            var: tuple(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": tuple(result.pairs(limit=None)),
    }


_query_events = st.tuples(
    st.just("query"),
    st.integers(min_value=0, max_value=len(DATASETS) - 1),
    st.sampled_from(MINSUPS),
    st.sampled_from(range(len(CONSTRAINT_SETS))),
    st.sampled_from(["single", "batch"]),
)
_other_events = st.one_of(
    st.tuples(st.just("invalidate"),
              st.integers(min_value=0, max_value=len(DATASETS) - 1)),
    st.tuples(st.just("clear")),
    st.tuples(st.just("advance"), st.sampled_from([5.0, 61.0])),
)
#: Churn a *live* database (append/delete + service.apply_delta) ...
_churn_events = st.tuples(
    st.just("churn"),
    st.sampled_from(["append", "delete"]),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),  # rng seed for the payload
)
#: ... and query it; answers must match a cold run on its exact content.
_live_query_events = st.tuples(
    st.just("query-live"),
    st.sampled_from(MINSUPS),
    st.sampled_from(range(len(CONSTRAINT_SETS))),
    st.sampled_from(["single", "batch"]),
)
_events = st.lists(
    st.one_of(
        _query_events, _other_events, _churn_events, _live_query_events
    ),
    min_size=1,
    max_size=8,
)


def _churn_payload(db, op, n, seed):
    rng = random.Random((seed, n, len(db)).__hash__())
    if op == "delete" and len(db) > n:
        return db.delete(rng.sample(range(len(db)), n))
    universe = sorted(db.item_universe() or {1})
    return db.append([
        tuple(sorted(rng.sample(universe, min(4, len(universe)))))
        for _ in range(n)
    ])


@settings(max_examples=10, deadline=None)
@given(events=_events)
def test_random_workload_never_serves_a_stale_answer(events):
    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    # Tiny bounds so LRU pressure, TTL expiry, and skeleton eviction all
    # actually happen inside an 8-event run.
    service = QueryService(
        max_entries=3, max_skeletons=2, ttl_seconds=60, clock=clock
    )
    live_db = DATASETS[0]
    for event in events:
        kind = event[0]
        if kind == "churn":
            _, op, n, seed = event
            live_db, delta = _churn_payload(live_db, op, n, seed)
            report = service.apply_delta(live_db, delta)
            note(f"churn {op} n={n} seed={seed} -> {len(live_db)} txns, "
                 f"{report.skeletons_refreshed} refreshed, "
                 f"{report.skeletons_dropped} dropped")
        elif kind == "query-live":
            _, minsup, c_index, mode = event
            constraints = CONSTRAINT_SETS[c_index]
            cfq = WORKLOAD.cfq(constraints=list(constraints), minsup=minsup)
            if mode == "batch":
                (item,) = service.execute_batch(live_db, [cfq]).items
                result, source = item.result, item.source
            else:
                result = service.execute(live_db, cfq)
                source = (result.cache_info or {}).get("source", "cold")
            note(f"query-live ({len(live_db)} txns) minsup={minsup} "
                 f"constraints={c_index} mode={mode} -> {source}")
            assert _served_answer(result) == _cold_answer_content(
                live_db.transactions, minsup, constraints
            ), (minsup, c_index, mode, source)
        elif kind == "query":
            _, db_index, minsup, c_index, mode = event
            constraints = CONSTRAINT_SETS[c_index]
            cfq = WORKLOAD.cfq(constraints=list(constraints), minsup=minsup)
            if mode == "batch":
                report = service.execute_batch(DATASETS[db_index], [cfq])
                (item,) = report.items
                result, source = item.result, item.source
            else:
                result = service.execute(DATASETS[db_index], cfq)
                source = (result.cache_info or {}).get("source", "cold")
            note(f"query db={db_index} minsup={minsup} "
                 f"constraints={c_index} mode={mode} -> {source}")
            assert _served_answer(result) == _cold_answer(
                db_index, minsup, constraints
            ), (db_index, minsup, c_index, mode, source)
        elif kind == "invalidate":
            removed = service.invalidate(DATASETS[event[1]])
            note(f"invalidate db={event[1]} removed={removed}")
        elif kind == "clear":
            removed = service.clear()
            note(f"clear removed={removed}")
        else:  # advance
            clock.now += event[1]
            note(f"advance +{event[1]}s (now {clock.now})")
    note(f"final stats: {service.stats.as_dict()}")
    # The accounting identity: everything stored has either left through
    # a metered exit or is still held.
    stats = service.stats
    assert stats.bytes_held >= 0
