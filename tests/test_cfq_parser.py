"""Whole-query parsing: the paper's {(S, T) | C} notation."""

import pytest

from repro.core.cfq_parser import parse_cfq, split_conjunction
from repro.db.domain import Domain
from repro.errors import ConstraintSyntaxError, QueryValidationError


@pytest.fixture
def domains(market_catalog):
    item = Domain.items(market_catalog)
    return {"S": item, "T": item}


def test_paper_intro_query(domains):
    cfq = parse_cfq(
        "{(S, T) | freq(S) & freq(T) & sum(S.Price) <= 100 "
        "& avg(T.Price) >= 200}",
        domains,
        default_minsup=0.05,
    )
    assert cfq.variables == ("S", "T")
    assert cfq.minsup_for("S") == 0.05
    assert len(cfq.onevar_for("S")) == 1
    assert len(cfq.onevar_for("T")) == 1


def test_per_variable_thresholds(domains):
    cfq = parse_cfq(
        "{(S, T) | freq(S, 0.01) & freq(T, 0.2) & S.Type = T.Type}", domains
    )
    assert cfq.minsup_for("S") == 0.01
    assert cfq.minsup_for("T") == 0.2
    assert len(cfq.twovar) == 1


def test_membership_atoms_ignored(domains):
    cfq = parse_cfq(
        "{(S, T) | S ⊆ Item & T subset Item & max(S.Price) <= min(T.Price)}",
        domains,
    )
    assert len(cfq.parsed) == 1


def test_single_variable_query(domains):
    cfq = parse_cfq("{(S) | S.Type = {snack}}", {"S": domains["S"]})
    assert cfq.variables == ("S",)


def test_set_literals_survive_splitting():
    atoms = split_conjunction("S.Type = {a, b} & count(S.Type) = 1")
    assert atoms == ["S.Type = {a, b}", "count(S.Type) = 1"]


def test_nested_parens_survive_splitting():
    atoms = split_conjunction("max(S.Price) <= min(T.Price) & freq(S, 0.1)")
    assert len(atoms) == 2


def test_bad_head_rejected(domains):
    with pytest.raises(ConstraintSyntaxError):
        parse_cfq("SELECT * FROM rules", domains)


def test_undeclared_domain_rejected(domains):
    with pytest.raises(QueryValidationError):
        parse_cfq("{(S, U) | S.Type = U.Type}", domains)


def test_freq_for_undeclared_variable_rejected(domains):
    with pytest.raises(QueryValidationError):
        parse_cfq("{(S) | freq(T)}", {"S": domains["S"]})


def test_parsed_query_actually_runs(domains, market_db):
    from repro import mine_cfq

    cfq = parse_cfq(
        "{(S, T) | freq(S, 0.2) & freq(T, 0.2) & S.Type = {snack} "
        "& T.Type = {beer} & max(S.Price) <= min(T.Price)}",
        domains,
    )
    result = mine_cfq(market_db, cfq)
    for s0, t0 in result.pairs():
        s_prices = domains["S"].catalog.project(s0, "Price")
        t_prices = domains["T"].catalog.project(t0, "Price")
        assert max(s_prices) <= min(t_prices)
