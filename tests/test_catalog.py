"""Unit tests for the item catalog (the itemInfo relation)."""

import pytest

from repro.db.catalog import ItemCatalog, catalog_from_rows
from repro.errors import ConstraintTypeError, DataError


def test_basic_lookup(market_catalog):
    assert market_catalog.value(1, "Price") == 10
    assert market_catalog.value(4, "Type") == "beer"


def test_items_sorted(market_catalog):
    assert market_catalog.items == (1, 2, 3, 4, 5, 6)
    assert len(market_catalog) == 6
    assert 3 in market_catalog
    assert 99 not in market_catalog


def test_project_is_multiset(market_catalog):
    assert market_catalog.project([1, 2], "Type") == ["snack", "snack"]


def test_project_set_is_set(market_catalog):
    assert market_catalog.project_set([1, 2], "Type") == frozenset({"snack"})


def test_select_returns_succinct_set(market_catalog):
    assert market_catalog.select("Price", lambda p: p >= 40) == frozenset({4, 5, 6})


def test_column_returns_copy(market_catalog):
    column = market_catalog.column("Price")
    column[1] = 9999
    assert market_catalog.value(1, "Price") == 10


def test_numeric_and_non_negative(market_catalog):
    assert market_catalog.numeric_attribute("Price")
    assert not market_catalog.numeric_attribute("Type")
    assert market_catalog.non_negative_attribute("Price")
    negative = ItemCatalog({"A": {1: -5, 2: 3}})
    assert negative.numeric_attribute("A")
    assert not negative.non_negative_attribute("A")


def test_restrict(market_catalog):
    small = market_catalog.restrict([1, 4])
    assert small.items == (1, 4)
    assert small.value(4, "Price") == 40


def test_restrict_unknown_item_raises(market_catalog):
    with pytest.raises(DataError):
        market_catalog.restrict([1, 999])


def test_unknown_attribute_raises(market_catalog):
    with pytest.raises(ConstraintTypeError):
        market_catalog.value(1, "Weight")


def test_unknown_item_raises(market_catalog):
    with pytest.raises(DataError):
        market_catalog.value(42, "Price")
    with pytest.raises(DataError):
        market_catalog.project([42], "Price")


def test_mismatched_attribute_coverage_rejected():
    with pytest.raises(DataError):
        ItemCatalog({"A": {1: 1}, "B": {2: 2}})


def test_empty_catalog_rejected():
    with pytest.raises(DataError):
        ItemCatalog({})


def test_catalog_from_rows():
    catalog = catalog_from_rows([(1, "snack", 10), (2, "beer", 20)])
    assert catalog.value(1, "Type") == "snack"
    assert catalog.value(2, "Price") == 20


def test_catalog_from_rows_duplicate_rejected():
    with pytest.raises(DataError):
        catalog_from_rows([(1, "a", 1), (1, "b", 2)])
