"""ccc-optimality audit (Definition 6, Theorem 4, Corollary 2)."""

import pytest

from repro.core.ccc import audit_ccc
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=250)


def audit(workload, constraints, **options):
    cfq = CFQ(domains=workload.domains, minsup=0.04, constraints=constraints)
    return audit_ccc(workload.db, cfq, **options)


def test_unconstrained_mining_is_ccc_optimal(workload):
    __, report = audit(workload, [])
    assert report.ccc_optimal_strict
    assert report.singleton_checks == 0


def test_succinct_onevar_query_is_strictly_ccc_optimal(workload):
    """Theorem 4: CAP with item-filter succinct constraints meets both
    conditions under the verbatim reading."""
    __, report = audit(workload, ["S.Type = {snacks}", "max(T.Price) <= 90"])
    assert report.ccc_optimal_strict, report.describe()
    assert report.singleton_checks <= report.universe_size


def test_mgf_bucket_query_is_ccc_optimal(workload):
    """Required buckets (min <= c): optimal under the MGF reading; the
    strict reading may count sets whose invalid subsets are infrequent."""
    __, report = audit(workload, ["min(S.Price) <= 40"])
    assert report.ccc_optimal, report.describe()
    assert report.condition2


def test_quasi_succinct_twovar_query_is_ccc_optimal(workload):
    """Corollary 2 on the reproduced pipeline."""
    __, report = audit(workload, ["max(S.Price) <= min(T.Price)"])
    assert report.ccc_optimal, report.describe()


def test_combined_query_is_ccc_optimal(workload):
    __, report = audit(
        workload,
        ["S.Type = {snacks}", "T.Type = {beers}", "max(S.Price) <= min(T.Price)"],
    )
    assert report.ccc_optimal, report.describe()


def test_sum_query_is_not_ccc_optimal(workload):
    """Section 6.2: strategies for non-quasi-succinct constraints violate
    condition (1) (they count sets invalid for the original constraint)
    and/or condition (2) (anti-monotone checks on larger sets)."""
    __, report = audit(workload, ["sum(S.Price) <= sum(T.Price)"])
    assert not report.ccc_optimal
    assert not report.condition2  # dynamic sum checks hit larger sets


def test_report_describe_mentions_conditions(workload):
    __, report = audit(workload, ["max(S.Price) <= min(T.Price)"])
    text = report.describe()
    assert "condition 1" in text and "condition 2" in text
