"""Shared fixtures and oracles for the test suite.

``brute_frequent`` is an *independent* frequent-set implementation (plain
subset enumeration, no shared code with the library's miners) used as the
ground truth throughout.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase


def brute_frequent(
    transactions: Sequence[Tuple[int, ...]],
    universe: Iterable[int],
    min_count: int,
    max_size: Optional[int] = None,
) -> Dict[Tuple[int, ...], int]:
    """All frequent itemsets by exhaustive enumeration (test oracle)."""
    universe = sorted(universe)
    frozen = [frozenset(t) for t in transactions]
    frequent: Dict[Tuple[int, ...], int] = {}
    limit = max_size if max_size is not None else len(universe)
    for k in range(1, limit + 1):
        found = False
        for combo in combinations(universe, k):
            needed = frozenset(combo)
            support = sum(1 for t in frozen if needed <= t)
            if support >= min_count:
                frequent[combo] = support
                found = True
        if not found:
            break
    return frequent


@pytest.fixture
def market_catalog() -> ItemCatalog:
    """Six items, two types, hand-picked prices."""
    return ItemCatalog(
        {
            "Price": {1: 10, 2: 20, 3: 30, 4: 40, 5: 50, 6: 60},
            "Type": {1: "snack", 2: "snack", 3: "snack",
                     4: "beer", 5: "beer", 6: "beer"},
        }
    )


@pytest.fixture
def market_domain(market_catalog) -> Domain:
    return Domain.items(market_catalog)


@pytest.fixture
def market_db() -> TransactionDatabase:
    """Ten transactions over the six market items, hand-written so exact
    supports are easy to read off."""
    return TransactionDatabase(
        [
            (1, 2, 4),
            (1, 2, 5),
            (1, 3, 4),
            (1, 2, 3),
            (2, 4, 5),
            (1, 4, 5),
            (2, 3, 6),
            (1, 2, 4, 5),
            (3, 4),
            (1, 2),
        ]
    )
