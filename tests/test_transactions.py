"""Unit tests for the transaction database."""

import pytest

from repro.db.domain import Domain
from repro.db.stats import ScanStats
from repro.db.transactions import TransactionDatabase
from repro.errors import DataError


def test_transactions_are_deduplicated_and_sorted():
    db = TransactionDatabase([[3, 1, 3], [2]])
    assert db[0] == (1, 3)
    assert db[1] == (2,)
    assert len(db) == 2


def test_support(market_db):
    assert market_db.support((1,)) == 7
    assert market_db.support((1, 2)) == 5
    assert market_db.support((4, 5)) == 3
    assert market_db.support((6, 5)) == 0
    # Empty set is supported by every transaction.
    assert market_db.support(()) == len(market_db)


def test_support_fraction(market_db):
    assert market_db.support_fraction((1, 2)) == 0.5


def test_item_universe(market_db):
    assert market_db.item_universe() == frozenset({1, 2, 3, 4, 5, 6})


def test_scan_records_stats(market_db):
    external = ScanStats()
    list(market_db.scan(external))
    list(market_db.scan())
    assert market_db.stats.scans == 2
    assert market_db.stats.tuples_read == 2 * len(market_db)
    assert external.scans == 1
    assert external.tuples_read == len(market_db)


def test_plain_iteration_does_not_record(market_db):
    list(iter(market_db))
    assert market_db.stats.scans == 0


def test_filtered(market_db):
    trimmed = market_db.filtered({1, 2})
    assert all(set(t) <= {1, 2} for t in trimmed)
    assert len(trimmed) == len(market_db)
    assert trimmed.support((1, 2)) == market_db.support((1, 2))


def test_projected(market_catalog, market_db):
    snack_domain = Domain.items(market_catalog, subset=[1, 2, 3])
    projected = market_db.projected(snack_domain)
    assert all(set(t) <= {1, 2, 3} for t in projected)


def test_min_count():
    db = TransactionDatabase([[1]] * 100)
    assert db.min_count(0.05) == 5
    assert db.min_count(0.051) == 6
    assert db.min_count(1.0) == 100
    assert db.min_count(1e-9) == 1  # never zero


@pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
def test_min_count_validates(bad):
    db = TransactionDatabase([[1]])
    with pytest.raises(DataError):
        db.min_count(bad)
