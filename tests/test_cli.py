"""The command-line interface."""

import pytest

from repro.cli import main


def test_query_command(capsys):
    code = main(
        [
            "query",
            "{(S, T) | S.Type = {snacks} & T.Type = {beers} "
            "& max(S.Price) <= min(T.Price)}",
            "--transactions", "300",
            "--pairs", "3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "valid pairs" in out
    assert "frequent valid S-sets" in out


def test_query_with_baseline_and_explain(capsys):
    code = main(
        [
            "query",
            "{(S, T) | max(S.Price) <= min(T.Price)}",
            "--transactions", "250",
            "--baseline",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup over Apriori+" in out
    assert "operation counts" in out


def test_single_variable_query(capsys):
    code = main(
        ["query", "{(S) | S.Type = {snacks}}", "--transactions", "200"]
    )
    assert code == 0
    assert "frequent valid S-sets" in capsys.readouterr().out


def test_classify_onevar(capsys):
    assert main(["classify", "min(S.Price) <= 10"]) == 0
    out = capsys.readouterr().out
    assert "1-variable" in out and "succinct:      True" in out


def test_classify_twovar(capsys):
    assert main(["classify", "max(S.A) <= min(T.B)"]) == 0
    out = capsys.readouterr().out
    assert "quasi-succinct: True" in out
    assert "Figures 2-3" in out


def test_classify_syntax_error_exit_code(capsys):
    assert main(["classify", "max(S.A <= 5"]) == 2
    assert "error:" in capsys.readouterr().err


def test_experiments_smoke_single_family(capsys):
    assert main(["experiments", "--scale", "smoke", "--only", "ccc"]) == 0
    out = capsys.readouterr().out
    assert "ccc-optimality audit" in out


def test_bad_query_exit_code(capsys):
    assert main(["query", "not a query"]) == 2


QUERY = "{(S, T) | max(S.Price) <= min(T.Price)}"


@pytest.mark.parametrize("backend", ["hybrid", "hashtree", "vertical"])
def test_query_backend_flag(capsys, backend):
    code = main(
        ["query", QUERY, "--transactions", "200", "--backend", backend]
    )
    assert code == 0
    assert "valid pairs" in capsys.readouterr().out


def test_query_parallel_backend_with_workers(capsys):
    code = main(
        [
            "query", QUERY,
            "--transactions", "200",
            "--backend", "parallel",
            "--workers", "2",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "valid pairs" in out
    assert "parallel counting:" in out


def test_query_parallel_matches_hybrid(capsys):
    argv = ["query", QUERY, "--transactions", "200", "--pairs", "5"]
    assert main(argv + ["--backend", "hybrid"]) == 0
    hybrid_out = capsys.readouterr().out
    assert main(argv + ["--backend", "parallel", "--workers", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == hybrid_out


@pytest.mark.parametrize("workers", ["0", "-3"])
def test_query_invalid_worker_count(capsys, workers):
    code = main(
        ["query", QUERY, "--backend", "parallel", "--workers", workers]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "workers must be >= 1" in err


def test_query_workers_require_parallel_backend(capsys):
    code = main(["query", QUERY, "--workers", "2"])
    assert code == 2
    assert "--backend parallel" in capsys.readouterr().err


def test_query_unknown_backend_clean_error(capsys):
    """Unknown backends exit 2 with an 'error:' line, not a traceback."""
    code = main(["query", QUERY, "--backend", "quantum"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "unknown counting backend" in err


@pytest.mark.parametrize("spec", ["parallel:", "parallel:abc"])
def test_query_malformed_parallel_spec_exit_code(capsys, spec):
    code = main(["query", QUERY, "--backend", spec])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "invalid worker count" in err


def test_query_parallel_spec_zero_workers_exit_code(capsys):
    code = main(["query", QUERY, "--backend", "parallel:0"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "workers must be >= 1" in err


def test_query_parallel_spec_runs(capsys):
    code = main(
        ["query", QUERY, "--transactions", "200", "--backend", "parallel:2"]
    )
    assert code == 0
    assert "valid pairs" in capsys.readouterr().out


def test_query_explain_reports_pool_lifecycle(capsys):
    code = main(
        [
            "query", QUERY,
            "--transactions", "200",
            "--backend", "parallel",
            "--workers", "2",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "pool fork(s)" in out
