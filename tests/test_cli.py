"""The command-line interface."""

import pytest

from repro.cli import main


def test_query_command(capsys):
    code = main(
        [
            "query",
            "{(S, T) | S.Type = {snacks} & T.Type = {beers} "
            "& max(S.Price) <= min(T.Price)}",
            "--transactions", "300",
            "--pairs", "3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "valid pairs" in out
    assert "frequent valid S-sets" in out


def test_query_with_baseline_and_explain(capsys):
    code = main(
        [
            "query",
            "{(S, T) | max(S.Price) <= min(T.Price)}",
            "--transactions", "250",
            "--baseline",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup over Apriori+" in out
    assert "operation counts" in out


def test_single_variable_query(capsys):
    code = main(
        ["query", "{(S) | S.Type = {snacks}}", "--transactions", "200"]
    )
    assert code == 0
    assert "frequent valid S-sets" in capsys.readouterr().out


def test_classify_onevar(capsys):
    assert main(["classify", "min(S.Price) <= 10"]) == 0
    out = capsys.readouterr().out
    assert "1-variable" in out and "succinct:      True" in out


def test_classify_twovar(capsys):
    assert main(["classify", "max(S.A) <= min(T.B)"]) == 0
    out = capsys.readouterr().out
    assert "quasi-succinct: True" in out
    assert "Figures 2-3" in out


def test_classify_syntax_error_exit_code(capsys):
    assert main(["classify", "max(S.A <= 5"]) == 2
    assert "error:" in capsys.readouterr().err


def test_experiments_smoke_single_family(capsys):
    assert main(["experiments", "--scale", "smoke", "--only", "ccc"]) == 0
    out = capsys.readouterr().out
    assert "ccc-optimality audit" in out


def test_bad_query_exit_code(capsys):
    assert main(["query", "not a query"]) == 2


QUERY = "{(S, T) | max(S.Price) <= min(T.Price)}"


@pytest.mark.parametrize("backend", ["hybrid", "hashtree", "vertical"])
def test_query_backend_flag(capsys, backend):
    code = main(
        ["query", QUERY, "--transactions", "200", "--backend", backend]
    )
    assert code == 0
    assert "valid pairs" in capsys.readouterr().out


def test_query_parallel_backend_with_workers(capsys):
    code = main(
        [
            "query", QUERY,
            "--transactions", "200",
            "--backend", "parallel",
            "--workers", "2",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "valid pairs" in out
    assert "parallel counting:" in out


def test_query_parallel_matches_hybrid(capsys):
    argv = ["query", QUERY, "--transactions", "200", "--pairs", "5"]
    assert main(argv + ["--backend", "hybrid"]) == 0
    hybrid_out = capsys.readouterr().out
    assert main(argv + ["--backend", "parallel", "--workers", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == hybrid_out


@pytest.mark.parametrize("workers", ["0", "-3"])
def test_query_invalid_worker_count(capsys, workers):
    code = main(
        ["query", QUERY, "--backend", "parallel", "--workers", workers]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "workers must be >= 1" in err


def test_query_workers_require_parallel_backend(capsys):
    code = main(["query", QUERY, "--workers", "2"])
    assert code == 2
    assert "--backend parallel" in capsys.readouterr().err


def test_query_unknown_backend_clean_error(capsys):
    """Unknown backends exit 2 with an 'error:' line, not a traceback."""
    code = main(["query", QUERY, "--backend", "quantum"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "unknown counting backend" in err


@pytest.mark.parametrize("spec", ["parallel:", "parallel:abc"])
def test_query_malformed_parallel_spec_exit_code(capsys, spec):
    code = main(["query", QUERY, "--backend", spec])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "invalid worker count" in err


def test_query_parallel_spec_zero_workers_exit_code(capsys):
    code = main(["query", QUERY, "--backend", "parallel:0"])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "workers must be >= 1" in err


def test_query_parallel_spec_runs(capsys):
    code = main(
        ["query", QUERY, "--transactions", "200", "--backend", "parallel:2"]
    )
    assert code == 0
    assert "valid pairs" in capsys.readouterr().out


def test_query_explain_reports_pool_lifecycle(capsys):
    code = main(
        [
            "query", QUERY,
            "--transactions", "200",
            "--backend", "parallel",
            "--workers", "2",
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "pool fork(s)" in out


def test_query_trace_out_writes_valid_report(capsys, tmp_path):
    import json

    from repro.obs.report import RunReport

    path = tmp_path / "run.json"
    code = main(
        [
            "query", "{(S, T) | S.Type = T.Type}",
            "--transactions", "200",
            "--trace-out", str(path),
            "--explain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "run report written to" in out
    assert "per-level pruning:" in out
    document = json.loads(path.read_text())
    RunReport.validate(document)
    # At least one span per mining level per variable.
    def spans(node):
        yield node
        for child in node.get("children", []):
            yield from spans(child)
    all_spans = [s for root in document["trace"]["spans"] for s in spans(root)]
    level_spans = [s for s in all_spans if s["name"] == "level"]
    assert len(level_spans) >= 2
    assert {"candidates_in", "frequent_out", "pruned"} <= set(
        level_spans[0]["attributes"]
    )
    assert document["pruning"]["S"]["1"]["counted"] > 0
    assert document["op_counters"]["sets_counted"] > 0


def test_query_profile_embeds_hotspots(capsys, tmp_path):
    import json

    path = tmp_path / "run.json"
    code = main(
        [
            "query", QUERY,
            "--transactions", "200",
            "--profile",
            "--trace-out", str(path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "top hotspots" in out
    document = json.loads(path.read_text())
    assert document["profile"]["engine"] == "cProfile"
    assert len(document["profile"]["hotspots"]) > 0


def test_query_log_level_flag(capsys):
    import logging

    from repro.obs import logs as obs_logs

    try:
        code = main(
            [
                "query", QUERY,
                "--transactions", "200",
                "--log-level", "debug",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Logging is wired to stderr; the dovetail engine logs its run config.
        assert "repro.mining.dovetail" in captured.err
    finally:
        # Detach the handler (it holds this test's captured stderr) so
        # later tests don't log into a torn-down stream.
        root = logging.getLogger(obs_logs.ROOT_LOGGER_NAME)
        if obs_logs._configured_handler is not None:
            root.removeHandler(obs_logs._configured_handler)
            obs_logs._configured_handler = None
        root.setLevel(logging.NOTSET)


def test_experiments_report_dir(capsys, tmp_path):
    import json

    from repro.obs.report import RunReport

    report_dir = tmp_path / "reports"
    code = main(
        [
            "experiments", "--scale", "smoke", "--only", "jmax",
            "--report-dir", str(report_dir),
        ]
    )
    assert code == 0
    assert "run reports written under" in capsys.readouterr().out
    written = sorted(report_dir.glob("*.json"))
    assert written
    for path in written:
        RunReport.validate(json.loads(path.read_text()))


# ----------------------------------------------------------------------
# Telemetry surfacing: --telemetry-out and the stats subcommand
# ----------------------------------------------------------------------
QUERY_2VAR = "{(S, T) | S.Type = T.Type & count(S) >= 2}"


def test_query_telemetry_out_requires_cache_dir(capsys, tmp_path):
    code = main(
        [
            "query", QUERY_2VAR,
            "--transactions", "200",
            "--telemetry-out", str(tmp_path / "telemetry.json"),
        ]
    )
    assert code == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_stats_on_telemetry_snapshot(capsys, tmp_path):
    import json

    telemetry_path = str(tmp_path / "telemetry.json")
    args = [
        "query", QUERY_2VAR,
        "--transactions", "200",
        "--cache-dir", str(tmp_path / "cache"),
        "--telemetry-out", telemetry_path,
    ]
    assert main(args) == 0
    assert main(args) == 0  # warm run overwrites the snapshot
    capsys.readouterr()

    with open(telemetry_path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema"] == "repro.serve.telemetry"
    # The second process served from the disk tier.
    assert "warm-disk" in document["outcomes"]

    assert main(["stats", telemetry_path]) == 0
    out = capsys.readouterr().out
    assert "serving telemetry" in out
    assert "warm-disk" in out
    assert "journal: seq" in out

    assert main(["stats", telemetry_path, "--format", "prometheus"]) == 0
    prom = capsys.readouterr().out
    from repro.obs.export import lint_prometheus

    assert lint_prometheus(prom) == []
    assert "repro_serves_total" in prom

    # Telemetry snapshots carry no span tree: chrome-trace must refuse.
    assert main(
        ["stats", telemetry_path, "--format", "chrome-trace"]
    ) == 2
    assert "chrome-trace" in capsys.readouterr().err


def test_stats_on_run_report_with_chrome_trace(capsys, tmp_path):
    import json

    report_path = str(tmp_path / "report.json")
    code = main(
        [
            "query", QUERY_2VAR,
            "--transactions", "200",
            "--trace-out", report_path,
        ]
    )
    assert code == 0
    capsys.readouterr()

    assert main(["stats", report_path]) == 0
    out = capsys.readouterr().out
    assert "run report v" in out
    assert "frequent valid S-sets" in out

    trace_path = str(tmp_path / "trace.json")
    assert main(
        ["stats", report_path, "--format", "chrome-trace",
         "--out", trace_path]
    ) == 0
    from repro.obs.export import validate_chrome_trace

    with open(trace_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert validate_chrome_trace(doc) == []
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_stats_rejects_unrecognized_files(capsys, tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"schema": "something.else"}')
    assert main(["stats", str(path)]) == 2
    assert "unrecognized schema" in capsys.readouterr().err

    missing = str(tmp_path / "missing.json")
    assert main(["stats", missing]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_batch_journal_out_writes_jsonl(capsys, tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    code = main(
        [
            "batch", QUERY_2VAR,
            "--transactions", "200",
            "--journal-out", journal_path,
        ]
    )
    assert code == 0
    assert "event journal written" in capsys.readouterr().out
    from repro.obs.events import read_journal

    events = read_journal(journal_path)
    assert events
    kinds = {event["kind"] for event in events}
    assert "batch_execute" in kinds
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
