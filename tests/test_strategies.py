"""The single-variable strategies: Apriori, CAP, FM, and their agreement."""

import pytest

from repro.constraints.parser import parse_constraint
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ConstraintTypeError, ExecutionError
from repro.mining.apriori import apriori, mine_frequent
from repro.mining.cap import cap_mine, compile_constraints
from repro.mining.fm import full_materialization
from tests.conftest import brute_frequent


def test_apriori_on_database(market_db):
    result = apriori(market_db, 0.3)
    assert result.all_sets() == brute_frequent(market_db.transactions, range(1, 7), 3)


def test_apriori_custom_universe(market_db):
    result = apriori(market_db, 0.2, elements=[1, 2, 3])
    assert all(set(s) <= {1, 2, 3} for s in result.all_sets())


def test_mine_frequent_records_levels(market_db):
    counters = OpCounters()
    result = mine_frequent(market_db.transactions, range(1, 7), 3,
                           counters=counters, var="T")
    assert result.var == "T"
    assert counters.counted_for("T") == sum(result.counted_per_level.values())
    assert result.max_level >= 2
    assert result.level1_supports[1] == 7


CONSTRAINT_CASES = [
    ["max(S.Price) <= 40"],
    ["min(S.Price) <= 20", "max(S.Price) <= 50"],
    ["S.Type = {snack}"],
    ["S.Type ∩ {beer} != ∅"],
    ["sum(S.Price) <= 80"],
    ["avg(S.Price) >= 25"],
    ["count(S) <= 2", "min(S.Price) >= 20"],
    ["min(S.Price) <= 20", "S.Type ⊇ {snack, beer}"],
]


@pytest.mark.parametrize("texts", CONSTRAINT_CASES)
def test_cap_equals_filtered_brute_force(market_catalog, market_db, texts):
    from repro.constraints.evaluate import evaluate_all
    from repro.db.domain import Domain

    domain = Domain.items(market_catalog)
    constraints = [parse_constraint(t) for t in texts]
    result = cap_mine("S", domain, market_db.transactions, 2, constraints)
    oracle = {
        itemset: support
        for itemset, support in brute_frequent(
            market_db.transactions, domain.elements, 2
        ).items()
        if evaluate_all(constraints, {"S": itemset}, {"S": domain})
    }
    assert result.all_sets() == oracle, texts


@pytest.mark.parametrize("texts", CONSTRAINT_CASES[:6])
def test_fm_agrees_with_cap(market_catalog, market_db, texts):
    from repro.db.domain import Domain

    domain = Domain.items(market_catalog)
    constraints = [parse_constraint(t) for t in texts]
    fm_result = full_materialization(
        "S", domain, market_db.transactions, 2, constraints
    )
    cap_result = cap_mine("S", domain, market_db.transactions, 2, constraints)
    assert fm_result.all_sets() == cap_result.all_sets()


def test_fm_checks_exponentially(market_catalog, market_db):
    from repro.db.domain import Domain

    domain = Domain.items(market_catalog)
    counters = OpCounters()
    full_materialization("S", domain, market_db.transactions, 2,
                         [parse_constraint("max(S.Price) <= 40")],
                         counters=counters)
    assert counters.total_checks == 2 ** 6 - 1


def test_fm_refuses_large_universe():
    from repro.db.catalog import ItemCatalog
    from repro.db.domain import Domain

    catalog = ItemCatalog({"A": {i: i for i in range(30)}})
    with pytest.raises(ExecutionError):
        full_materialization("S", Domain.items(catalog), [], 1)


def test_compile_constraints_rejects_wrong_variable(market_catalog):
    from repro.db.domain import Domain

    with pytest.raises(ConstraintTypeError):
        compile_constraints(
            [parse_constraint("max(T.Price) <= 10")], "S",
            Domain.items(market_catalog),
        )


def test_cap_cheaper_than_unconstrained(market_catalog, market_db):
    from repro.db.domain import Domain

    domain = Domain.items(market_catalog)
    plain = OpCounters()
    mine_frequent(market_db.transactions, domain.elements, 2, counters=plain)
    constrained = OpCounters()
    cap_mine("S", domain, market_db.transactions, 2,
             [parse_constraint("S.Type = {snack}")], counters=constrained)
    assert constrained.total_counted < plain.total_counted
    assert constrained.cost() < plain.cost()
