"""Unit semantics of the fault-injection plan and the circuit breaker.

The fault matrix (``test_fault_matrix.py``) and the chaos harness
(``test_chaos_differential.py``) prove the *service* degrades correctly;
this file pins the primitives they stand on: rule windows, determinism,
plan (de)serialization, the injection helpers, and the breaker's
closed → open → half-open → closed lifecycle.
"""

import errno
import json

import pytest

from repro.errors import ExecutionError
from repro.runtime import faults
from repro.runtime.faults import FaultPlan, FaultRule, InjectedFault
from repro.serve.cache import CircuitBreaker


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with no process-wide plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# FaultRule windows
# ----------------------------------------------------------------------
def test_rule_window_is_half_open():
    rule = FaultRule("serve.disk.write", "enospc", times=2, after=3)
    assert [n for n in range(8) if rule.covers(n)] == [3, 4]


def test_rule_forever_from_after():
    rule = FaultRule("serve.disk.read", "eio", times=-1, after=1)
    assert not rule.covers(0)
    assert all(rule.covers(n) for n in (1, 2, 100))


@pytest.mark.parametrize("bad", [
    dict(site="nope.site", kind="eio"),
    dict(site="serve.disk.read", kind="nope"),
    dict(site="serve.disk.read", kind="eio", times=0),
    dict(site="serve.disk.read", kind="eio", after=-1),
])
def test_rule_validation(bad):
    with pytest.raises(ExecutionError):
        FaultRule(**bad)


# ----------------------------------------------------------------------
# FaultPlan: determinism, counters, serialization
# ----------------------------------------------------------------------
def test_plan_counts_every_hit_and_logs_fired():
    plan = FaultPlan().add("serve.disk.write", "enospc", times=1, after=1)
    assert plan.hit("serve.disk.write") is None
    rule = plan.hit("serve.disk.write")
    assert rule is not None and rule.kind == "enospc"
    assert plan.hit("serve.disk.write") is None
    assert plan.hits["serve.disk.write"] == 3
    assert plan.fired == [("serve.disk.write", "enospc", 1)]
    assert plan.fired_kinds("serve.disk.write") == ["enospc"]


def test_clear_rules_keeps_history():
    plan = FaultPlan().add("journal.write", "eio", times=-1)
    plan.hit("journal.write")
    plan.clear_rules()
    assert plan.hit("journal.write") is None  # faults cleared
    assert plan.fired == [("journal.write", "eio", 0)]
    assert plan.hits["journal.write"] == 2  # counters keep advancing


def test_plan_round_trips_through_json():
    plan = FaultPlan(seed=7).add("serve.disk.read", "corrupt", times=2,
                                 after=1)
    plan.add("clock", "clock_jump", jump_seconds=120.0)
    rebuilt = FaultPlan.from_json(json.dumps(plan.as_dict()))
    assert rebuilt.as_dict() == plan.as_dict()


@pytest.mark.parametrize("text", [
    "{not json",
    '{"rules": 3}',
    '{"unknown_key": 1}',
    '{"rules": [{"site": "serve.disk.read"}]}',
])
def test_plan_rejects_malformed_documents(text):
    with pytest.raises(ExecutionError):
        FaultPlan.from_json(text)


def test_mangle_is_deterministic_and_always_changes():
    text = '{"a": 1, "b": 2}'
    a = FaultPlan(seed=3).mangle(text)
    b = FaultPlan(seed=3).mangle(text)
    assert a == b != text
    assert FaultPlan(seed=4).mangle(text) != text


# ----------------------------------------------------------------------
# Injection helpers
# ----------------------------------------------------------------------
def test_helpers_are_plain_io_without_a_plan(tmp_path):
    path = str(tmp_path / "f.txt")
    faults.fs_write_text(path, "hello", "serve.disk.write")
    assert faults.fs_read_text(path, "serve.disk.read") == "hello"
    faults.fs_replace(path, path + ".2", "serve.disk.replace")
    faults.fs_remove(path + ".2", "serve.disk.remove")
    faults.fire("skeleton.refresh")  # no-op


def test_torn_write_leaves_a_prefix(tmp_path):
    path = str(tmp_path / "torn.json")
    plan = FaultPlan().add("serve.disk.write", "torn")
    with faults.installed(plan):
        with pytest.raises(InjectedFault) as exc:
            faults.fs_write_text(path, "0123456789", "serve.disk.write")
    assert exc.value.errno == errno.ENOSPC
    with open(path) as handle:
        assert handle.read() == "01234"


def test_short_and_corrupt_reads(tmp_path):
    path = str(tmp_path / "doc.json")
    with open(path, "w") as handle:
        handle.write("0123456789")
    plan = FaultPlan(seed=1).add("serve.disk.read", "short")
    plan.add("serve.disk.read", "corrupt", after=1)
    with faults.installed(plan):
        assert faults.fs_read_text(path, "serve.disk.read") == "01234"
        mangled = faults.fs_read_text(path, "serve.disk.read")
    assert mangled != "0123456789" and len(mangled) == 10


def test_errno_kinds_raise_real_oserrors(tmp_path):
    path = str(tmp_path / "f.txt")
    plan = (
        FaultPlan()
        .add("serve.disk.write", "eacces")
        .add("serve.disk.replace", "rename")
    )
    with faults.installed(plan):
        with pytest.raises(OSError) as exc:
            faults.fs_write_text(path, "x", "serve.disk.write")
        assert exc.value.errno == errno.EACCES
        assert not (tmp_path / "f.txt").exists()  # nothing landed
        with open(path, "w") as handle:
            handle.write("x")
        with pytest.raises(OSError):
            faults.fs_replace(path, path + ".2", "serve.disk.replace")


def test_fire_error_kind_raises_execution_error():
    plan = FaultPlan().add("skeleton.refresh", "error")
    with faults.installed(plan):
        with pytest.raises(ExecutionError):
            faults.fire("skeleton.refresh")


def test_installed_restores_previous_plan():
    outer = faults.install(FaultPlan())
    inner = FaultPlan()
    with faults.installed(inner):
        assert faults.active() is inner
    assert faults.active() is outer


def test_wrapped_clock_applies_jumps_permanently():
    plan = FaultPlan().add("clock", "clock_jump", jump_seconds=100.0,
                           after=1)
    ticks = iter([1.0, 2.0, 3.0])
    clock = plan.wrap_clock(lambda: next(ticks))
    assert clock() == 1.0
    assert clock() == 102.0  # the jump fires...
    assert clock() == 103.0  # ...and sticks


# ----------------------------------------------------------------------
# CircuitBreaker lifecycle
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_at_threshold_and_probes_after_cooldown():
    clock = _Clock()
    transitions = []
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10.0,
                             clock=clock,
                             on_transition=lambda n, o: transitions.append(n))
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == breaker.CLOSED
    breaker.record_failure()
    assert breaker.state == breaker.OPEN
    assert not breaker.allow()  # open: disk tier skipped wholesale
    clock.now = 9.9
    assert not breaker.allow()
    clock.now = 10.0
    assert breaker.allow()  # half-open probe
    assert breaker.state == breaker.HALF_OPEN
    breaker.record_success()
    assert breaker.state == breaker.CLOSED
    assert breaker.allow()
    assert transitions == ["open", "half-open", "closed"]
    assert breaker.snapshot()["opens"] == 1
    assert breaker.snapshot()["closes"] == 1


def test_breaker_failed_probe_reopens():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                             clock=clock)
    breaker.record_failure()
    clock.now = 5.0
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == breaker.OPEN
    assert not breaker.allow()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == breaker.CLOSED


def test_breaker_validates_parameters():
    with pytest.raises(ExecutionError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ExecutionError):
        CircuitBreaker(cooldown_seconds=0)
