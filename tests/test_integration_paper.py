"""Integration tests: the paper's headline claims at smoke scale.

The benchmark suite reproduces the full tables; these tests assert the
same qualitative shapes quickly, so a plain ``pytest tests/`` run already
validates the reproduction's direction.
"""

import pytest

from repro.bench.experiments import jmax_table
from repro.bench.harness import run_strategy
from repro.core.query import CFQ
from repro.datagen.workloads import fig8a_workload, fig8b_workload, jmax_workload


@pytest.mark.parametrize("low, high", [(16.6, 83.4)])
def test_fig8a_speedup_decreases_with_overlap(low, high):
    speedups = {}
    for overlap in (low, high):
        workload = fig8a_workload(overlap, n_items=200, n_transactions=600)
        cfq = workload.cfq()
        optimized = run_strategy("opt", workload.db, cfq)
        baseline = run_strategy("base", workload.db, cfq, kind="apriori_plus")
        speedups[overlap] = optimized.speedup_over(baseline)
        assert set(optimized.result.pairs()) == set(baseline.result.pairs())
    assert speedups[low] > speedups[high] >= 1.0


def test_fig8b_two_var_beats_one_var_and_tracks_overlap():
    combined = {}
    for overlap in (20.0, 80.0):
        workload = fig8b_workload(overlap, n_items=200, n_transactions=600)
        cfq = workload.cfq()
        baseline = run_strategy("base", workload.db, cfq, kind="apriori_plus")
        one_var = run_strategy("1var", workload.db, cfq,
                               use_reduction=False, use_jmax=False)
        both = run_strategy("2var", workload.db, cfq)
        assert both.cost < one_var.cost < baseline.cost
        combined[overlap] = both.speedup_over(baseline)
    assert combined[20.0] > combined[80.0]


def test_jmax_speedup_decreases_with_t_mean():
    speedups = {}
    for mean in (400.0, 1000.0):
        workload = jmax_workload(mean, n_transactions=300, core_size=9)
        cfq = workload.cfq()
        optimized = run_strategy("opt", workload.db, cfq)
        baseline = run_strategy("base", workload.db, cfq, kind="apriori_plus")
        speedups[mean] = optimized.speedup_over(baseline)
        assert set(optimized.result.pairs()) == set(baseline.result.pairs())
    assert speedups[400.0] > speedups[1000.0]
    assert speedups[1000.0] >= 0.9  # never meaningfully slower


def test_jmax_table_smoke_scale_runs():
    result = jmax_table(means=(400.0, 800.0), scale="smoke")
    assert len(result.rows) == 2
    assert result.rows[0][1] >= result.rows[1][1]
