"""The dovetailed dual-lattice engine: answer equivalence with Apriori+,
scan sharing, and the reduction/Jmax hooks."""

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.mining.aprioriplus import apriori_plus


QUERIES = [
    ["max(S.Price) <= min(T.Price)"],
    ["S.Type = T.Type"],
    ["S.Type ∩ T.Type = ∅"],
    ["S.Type ∩ T.Type != ∅"],
    ["S.Type ⊆ T.Type"],
    ["min(S.Price) <= max(T.Price)"],
    ["max(S.Price) <= max(T.Price)", "min(T.Price) >= 30"],
    ["S.Type = {snacks}", "T.Type = {beers}", "max(S.Price) <= min(T.Price)"],
    ["sum(S.Price) <= sum(T.Price)"],
    ["sum(S.Price) <= max(T.Price)"],
    ["avg(S.Price) <= avg(T.Price)"],
    ["avg(S.Price) >= min(T.Price)"],
    ["min(S.Price) = min(T.Price)"],
    ["S.Type != T.Type"],
    ["sum(S.Price) <= 150", "sum(S.Price) <= sum(T.Price)"],
    ["count(S.Type) = 1", "count(T.Type) = 1", "S.Type != T.Type"],
]


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=400)


@pytest.mark.parametrize("texts", QUERIES)
def test_optimizer_pairs_equal_apriori_plus(workload, texts):
    """The headline correctness property: for every query shape, the
    optimized strategy and the naive baseline produce the same pairs."""
    cfq = CFQ(domains=workload.domains, minsup=0.03, constraints=texts)
    optimized = CFQOptimizer(cfq).execute(workload.db)
    baseline = apriori_plus(workload.db, cfq)
    assert set(optimized.pairs()) == set(baseline.pairs()), texts


@pytest.mark.parametrize(
    "options",
    [
        {"dovetail": False},
        {"use_reduction": False},
        {"use_jmax": False},
        {"dovetail": False, "use_reduction": False, "use_jmax": False},
    ],
)
def test_every_ablation_is_still_correct(workload, options):
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.03,
        constraints=["max(S.Price) <= min(T.Price)",
                     "sum(S.Price) <= sum(T.Price)"],
    )
    optimized = CFQOptimizer(cfq).execute(workload.db, **options)
    baseline = apriori_plus(workload.db, cfq)
    assert set(optimized.pairs()) == set(baseline.pairs()), options


def test_dovetailing_shares_scans(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.03,
              constraints=["max(S.Price) <= min(T.Price)"])
    dovetailed = CFQOptimizer(cfq).execute(workload.db, counters=OpCounters())
    sequential = CFQOptimizer(cfq).execute(
        workload.db, counters=OpCounters(), dovetail=False
    )
    assert dovetailed.counters.scans < sequential.counters.scans


def test_reduction_reduces_counted_sets(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.03,
              constraints=["S.Type = T.Type", "min(S.Price) >= 60",
                           "max(T.Price) <= 50"])
    with_reduction = CFQOptimizer(cfq).execute(workload.db)
    without = CFQOptimizer(cfq).execute(workload.db, use_reduction=False)
    assert with_reduction.counters.total_counted <= without.counters.total_counted
    assert set(with_reduction.pairs()) == set(without.pairs())


def test_jmax_disabled_when_bound_side_has_buckets(workload):
    """A bucket on the T side would hide frequent sets from the V^k
    statistics, so the engine must refuse the series."""
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.03,
        constraints=["sum(S.Price) <= sum(T.Price)", "min(T.Price) <= 30"],
    )
    result = CFQOptimizer(cfq).execute(workload.db)
    assert result.raw.disabled_jmax, "series should be disabled"
    assert not result.raw.bound_histories
    baseline = apriori_plus(workload.db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())


def test_jmax_allowed_with_filters_on_bound_side(workload):
    """Item filters keep the T lattice exhaustive over its restricted
    universe, so the series stays sound and enabled."""
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.03,
        constraints=["sum(S.Price) <= sum(T.Price)", "max(T.Price) <= 120"],
    )
    result = CFQOptimizer(cfq).execute(workload.db)
    assert not result.raw.disabled_jmax
    assert result.raw.bound_histories
    baseline = apriori_plus(workload.db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())


def test_bound_history_is_monotone_decreasing(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.03,
              constraints=["sum(S.Price) <= sum(T.Price)"])
    result = CFQOptimizer(cfq).execute(workload.db)
    for history in result.raw.bound_histories.values():
        bounds = [bound for __, bound in history]
        assert all(a >= b - 1e-9 for a, b in zip(bounds, bounds[1:]))


def test_sequential_mode_mines_bound_side_first(workload):
    """Without dovetailing the engine mines the sum side to completion
    first, so the S side starts with the *final* (global-maximum) bound —
    the alternative strategy discussed at the end of Section 5.2.  Its S
    lattice therefore never counts more sets than the dovetailed run."""
    cfq = CFQ(domains=workload.domains, minsup=0.03,
              constraints=["sum(S.Price) <= sum(T.Price)"])
    dovetailed = CFQOptimizer(cfq).execute(workload.db, counters=OpCounters())
    sequential = CFQOptimizer(cfq).execute(
        workload.db, counters=OpCounters(), dovetail=False
    )
    assert (sequential.counters.counted_for("S")
            <= dovetailed.counters.counted_for("S"))
    assert set(sequential.pairs()) == set(dovetailed.pairs())


def test_single_variable_query(workload):
    cfq = CFQ(
        domains={"S": workload.domains["S"]},
        minsup=0.03,
        constraints=["S.Type = {snacks}"],
    )
    result = CFQOptimizer(cfq).execute(workload.db)
    sets = result.valid_sets("S")
    assert sets
    types = {
        t for s in sets for t in workload.catalog.project_set(s, "Type")
    }
    assert types == {"snacks"}
    with pytest.raises(ValueError):
        result.pairs()


def test_different_minsup_per_variable(workload):
    cfq = CFQ(
        domains=workload.domains,
        minsup={"S": 0.02, "T": 0.10},
        constraints=["max(S.Price) <= min(T.Price)"],
    )
    result = CFQOptimizer(cfq).execute(workload.db)
    baseline = apriori_plus(workload.db, cfq)
    assert set(result.pairs()) == set(baseline.pairs())
