"""Concurrency proofs for the query server's sharing machinery.

Three load-bearing properties, each driven with barrier-synchronised
threads so the interleavings are *deterministic*, not hopeful:

* **single-flight executes once** — N identical concurrent queries run
  the engine exactly once (spy-counted), and the other N-1 responses are
  byte-identical copies of the leader's with ``serving.dedup`` set;
* **coalesced batches are answer-invisible** — N *distinct* queries
  admitted in one window dispatch as one shared-scan batch whose every
  answer is bit-identical to that query's cold single-threaded run;
* **guard trips propagate without poisoning** — a leader cut short by a
  tenant budget hands ``status == "partial"`` to every waiter, and the
  next request re-executes fresh (nothing partial was cached).
"""

import json
import threading
import time

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload, refinement_queries
from repro.serve import (
    QueryServer,
    QueryService,
    TenantProfile,
    TenantRegistry,
    answer_document,
    result_key,
)
import repro.serve.service as service_module
from repro.serve.replay import query_text

WORKLOAD = quickstart_workload(n_transactions=120)


@pytest.fixture
def spy(monkeypatch):
    """Count (and optionally gate) engine executions inside the service.

    ``spy.calls`` collects one entry per real ``CFQOptimizer.execute``;
    ``spy.gate`` (when armed) blocks every execution until released, so
    a test can pile joiners onto a leader mid-flight.
    """

    class Spy:
        def __init__(self):
            self.calls = []
            self.gate = None
            self._lock = threading.Lock()

    spy = Spy()
    real_execute = CFQOptimizer.execute

    class CountingOptimizer(CFQOptimizer):
        def execute(self, db, **kwargs):
            with spy._lock:
                spy.calls.append(str(self.cfq))
            if spy.gate is not None and not spy.gate.wait(10):
                raise AssertionError("spy gate never released")
            return real_execute(self, db, **kwargs)

    monkeypatch.setattr(service_module, "CFQOptimizer", CountingOptimizer)
    return spy


def _server(**overrides) -> QueryServer:
    options = {
        "window_seconds": 0.0,
        "queue_limit": 64,
    }
    options.update(overrides)
    return QueryServer(
        QueryService(telemetry=True),
        WORKLOAD.db,
        WORKLOAD.domains,
        **options,
    )


def _request(cfq, tenant="t"):
    return {"query": query_text(cfq), "tenant": tenant}


def _flight_key(core: QueryServer, cfq) -> str:
    defaulted = core.service._defaulted({})
    return result_key(cfq, core.db, defaulted)


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = []

    def runner(i):
        try:
            barrier.wait(timeout=10)
            results[i] = target(i)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert all(result is not None for result in results)
    return results


# ----------------------------------------------------------------------
# Single-flight: one execution per fingerprint
# ----------------------------------------------------------------------
def test_identical_concurrent_queries_execute_once(spy):
    core = _server()
    cfq = WORKLOAD.cfq(minsup=0.05)
    key = _flight_key(core, cfq)
    n = 6

    # Hold the leader's execution open until all five joiners are
    # counted on its flight — the dedup is then forced, not lucky.
    spy.gate = threading.Event()
    releaser_error = []

    def release_when_joined():
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if core.flights.waiters(key) >= n - 1:
                spy.gate.set()
                return
            time.sleep(0.001)
        releaser_error.append("joiners never arrived")
        spy.gate.set()

    releaser = threading.Thread(target=release_when_joined)
    releaser.start()
    responses = _run_threads(n, lambda i: core.handle_query(_request(cfq)))
    releaser.join()
    assert not releaser_error, releaser_error

    assert len(spy.calls) == 1, spy.calls
    statuses = [status for status, _ in responses]
    assert statuses == [200] * n
    answers = [body["answer"] for _, body in responses]
    assert all(answer == answers[0] for answer in answers)
    dedup_flags = sorted(body["serving"]["dedup"] for _, body in responses)
    assert dedup_flags == [False] + [True] * (n - 1)
    # The flight table drained: nothing in flight, nothing leaked.
    assert core.flights.waiters(key) == 0

    telemetry = core.service.telemetry.snapshot(core.service.stats)
    counters = telemetry["metrics"]["counters"]
    assert counters.get("flight_dedup_hits", 0) >= n - 1


def test_post_flight_request_is_served_from_cache_not_a_new_flight(spy):
    core = _server()
    cfq = WORKLOAD.cfq(minsup=0.05)
    status, first = core.handle_query(_request(cfq))
    assert status == 200
    executed = len(spy.calls)
    status, second = core.handle_query(_request(cfq))
    assert status == 200
    assert len(spy.calls) == executed  # warm path, no re-execution
    assert second["answer"] == first["answer"]
    assert second["serving"]["dedup"] is False


# ----------------------------------------------------------------------
# Coalescing: shared-scan batches, bit-identical to cold runs
# ----------------------------------------------------------------------
def test_coalesced_batch_answers_are_bit_identical_to_cold_runs():
    session = refinement_queries(WORKLOAD, steps=3)
    n = len(session)
    core = _server(window_seconds=5.0, max_width=n)

    responses = _run_threads(
        n, lambda i: core.handle_query(_request(session[i]))
    )

    widths = [body["serving"]["coalesced_width"] for _, body in responses]
    assert widths == [n] * n  # the barrier packed one full group
    for (status, body), cfq in zip(responses, session):
        assert status == 200
        cold = CFQOptimizer(cfq).execute(WORKLOAD.db)
        oracle = json.loads(json.dumps(answer_document(cold)))
        assert body["answer"] == oracle

    telemetry = core.service.telemetry.snapshot(core.service.stats)
    counters = telemetry["metrics"]["counters"]
    assert counters.get("coalesced_batches", 0) == 1
    journal_kinds = [
        event["kind"] for event in core.service.telemetry.journal.tail(50)
    ]
    assert "server_coalesce" in journal_kinds


def test_singleton_group_falls_back_to_single_execution(spy):
    core = _server(window_seconds=0.005, max_width=8)
    cfq = WORKLOAD.cfq(minsup=0.05)
    status, body = core.handle_query(_request(cfq))
    assert status == 200
    assert body["serving"]["coalesced_width"] == 1
    assert body["serving"]["path"] == "single"
    assert len(spy.calls) == 1


# ----------------------------------------------------------------------
# Guard trips: propagate to every waiter, poison nothing
# ----------------------------------------------------------------------
def test_guard_tripped_leader_propagates_partial_to_all_waiters(spy):
    tenants = TenantRegistry(
        {
            "capped": TenantProfile(
                name="capped", rate=1000, burst=1000, max_candidates=1
            ),
            "roomy": TenantProfile(name="roomy", rate=1000, burst=1000),
        }
    )
    core = _server(tenants=tenants)
    cfq = WORKLOAD.cfq(minsup=0.05)
    key = _flight_key(core, cfq)
    n = 4

    spy.gate = threading.Event()

    def release_when_joined():
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if core.flights.waiters(key) >= n - 1:
                break
            time.sleep(0.001)
        spy.gate.set()

    releaser = threading.Thread(target=release_when_joined)
    releaser.start()
    # Every thread asks as the budget-capped tenant; the leader's guard
    # trips and all waiters share the partial.
    responses = _run_threads(
        n, lambda i: core.handle_query(_request(cfq, tenant="capped"))
    )
    releaser.join()

    assert len(spy.calls) == 1
    for status, body in responses:
        assert status == 200
        assert body["answer"]["status"] == "partial"
        assert body["serving"]["interruption"]["reason"] == "candidates"
        assert "pairs" not in body["answer"]  # the pair phase never ran

    # Nothing poisoned: the partial reached no cache tier, so a roomy
    # tenant's next identical query re-executes and completes.
    spy.gate = None
    status, body = core.handle_query(_request(cfq, tenant="roomy"))
    assert status == 200
    assert len(spy.calls) == 2  # fresh execution, not a cache hit
    assert body["answer"]["status"] == "complete"
    cold = CFQOptimizer(cfq).execute(WORKLOAD.db)
    assert body["answer"] == json.loads(json.dumps(answer_document(cold)))


def test_leader_exception_reaches_every_waiter_as_500(spy, monkeypatch):
    core = _server()
    cfq = WORKLOAD.cfq(minsup=0.05)
    key = _flight_key(core, cfq)
    n = 3

    def explode(*args, **kwargs):
        if spy.gate is not None and not spy.gate.wait(10):
            raise AssertionError("gate never released")
        raise RuntimeError("engine crashed mid-run")

    monkeypatch.setattr(core.service, "execute", explode)
    spy.gate = threading.Event()

    def release_when_joined():
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if core.flights.waiters(key) >= n - 1:
                break
            time.sleep(0.001)
        spy.gate.set()

    releaser = threading.Thread(target=release_when_joined)
    releaser.start()
    responses = _run_threads(n, lambda i: core.handle_query(_request(cfq)))
    releaser.join()

    for status, body in responses:
        assert status == 500
        assert body["code"] == "internal"
    # The failed flight left the table; a retry opens a fresh one.
    assert core.flights.waiters(key) == 0
    assert core.queue_depth == 0
