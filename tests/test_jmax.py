"""The J^k_max machinery (Section 5.2, Figures 5 and 6, Lemmas 5-7)."""

from math import inf

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jmax import (
    BoundSeries,
    ak_avg_bound,
    element_set_counts,
    j_bound,
    jmax_upper_bound,
    vk_sum_bound,
)
from repro.errors import ExecutionError
from tests.conftest import brute_frequent


def test_paper_numerical_example_jbound():
    """Section 5.2's running example: 17 frequent 4-sets containing t1
    rule out frequent sets of size 7 because C(6,3)=20 > 17; the bound is
    J = 2 (size at most 6)."""
    assert j_bound(17, 4) == 2
    # And exactly 20 would allow one more.
    assert j_bound(20, 4) == 3


def test_j_bound_boundaries():
    # One frequent k-set containing t allows no extension beyond j=0.
    assert j_bound(1, 2) == 0
    # k frequent k-sets allow j=1 (C(k, k-1) = k).
    assert j_bound(3, 3) == 1
    with pytest.raises(ExecutionError):
        j_bound(5, 1)


def test_element_set_counts():
    counts = element_set_counts([(1, 2), (1, 3), (2, 3)])
    assert counts == {1: 2, 2: 2, 3: 2}


def test_paper_numerical_example_vk():
    """The MaxSum example: Sum_100^4 = 240 from {t10,t50,t80,t100}, the
    top-2 co-occurring values are 90 and 70, so MaxSum = 400."""
    # Element ids are the values themselves (ti.B = i).
    values = {i: i for i in (10, 50, 80, 100, 90, 70)}
    frequent_4 = [
        (10, 50, 80, 100),
        (10, 50, 90, 100),  # co-occurring: 90
        (10, 70, 80, 100),  # co-occurring: 70
    ]
    bound = vk_sum_bound(frequent_4, values, jmax=2)
    # For t=100 the best base set is (10,50,80,100) with sum 240; adding
    # the top-2 co-occurring outside values 90 and 70 gives 400.
    assert bound == 240 + 90 + 70


def test_vk_bounds_every_frequent_superset_sum():
    """Lemma 6 grounding: V^k upper-bounds sum over frequent sets of
    size >= k (checked against a brute-force mined lattice)."""
    transactions = [
        (1, 2, 3, 4), (1, 2, 3, 4), (1, 2, 3), (2, 3, 4), (1, 3, 4),
        (1, 2), (2, 4), (3, 4), (1, 2, 3, 4),
    ]
    values = {1: 5.0, 2: 9.0, 3: 2.0, 4: 7.0}
    frequent = brute_frequent(transactions, [1, 2, 3, 4], 3)
    for k in (2, 3):
        level_k = [s for s in frequent if len(s) == k]
        jm = jmax_upper_bound(level_k, k)
        bound = vk_sum_bound(level_k, values, jm)
        for itemset in frequent:
            if len(itemset) >= k:
                assert sum(values[e] for e in itemset) <= bound, (k, itemset)


def test_ak_bounds_every_frequent_superset_avg():
    transactions = [
        (1, 2, 3), (1, 2, 3), (1, 2), (2, 3), (1, 3), (1, 2, 3),
    ]
    values = {1: 4.0, 2: 10.0, 3: 6.0}
    frequent = brute_frequent(transactions, [1, 2, 3], 2)
    level_2 = [s for s in frequent if len(s) == 2]
    jm = jmax_upper_bound(level_2, 2)
    bound = ak_avg_bound(level_2, values, jm, 2)
    for itemset in frequent:
        if len(itemset) >= 2:
            avg = sum(values[e] for e in itemset) / len(itemset)
            assert avg <= bound


def test_empty_level_gives_minus_inf():
    assert vk_sum_bound([], {}, 2) == -inf
    assert ak_avg_bound([], {}, 2, 2) == -inf
    assert jmax_upper_bound([], 2) == 0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_items=st.integers(min_value=3, max_value=6),
)
def test_bound_series_is_sound_and_monotone(seed, n_items):
    """Lemmas 5-7 as one property: feeding successive levels of a real
    mined lattice, the W^k series never increases and always bounds the
    maximum frequent-set sum."""
    import numpy as np

    rng = np.random.RandomState(seed)
    items = list(range(n_items))
    transactions = [
        tuple(sorted(rng.choice(items, size=rng.randint(1, n_items + 1),
                                replace=False)))
        for __ in range(25)
    ]
    values = {i: float(rng.randint(0, 50)) for i in items}
    frequent = brute_frequent(transactions, items, 4)
    if not frequent:
        return
    true_max = max(sum(values[e] for e in s) for s in frequent)
    series = BoundSeries(values=values, kind="sum")
    series.start([s[0] for s in frequent if len(s) == 1])
    previous = series.bound
    assert previous >= true_max
    deepest = max(len(s) for s in frequent)
    for k in range(2, deepest + 1):
        level = [s for s in frequent if len(s) == k]
        bound = series.update(k, level)
        assert bound <= previous + 1e-9
        assert bound >= true_max - 1e-9, (bound, true_max)
        previous = bound


def test_lemma5_j_decreases_with_k():
    transactions = [(1, 2, 3, 4, 5)] * 5 + [(1, 2), (2, 3), (4, 5)]
    frequent = brute_frequent(transactions, [1, 2, 3, 4, 5], 4)
    by_level = {}
    for s in frequent:
        by_level.setdefault(len(s), []).append(s)
    bounds = [jmax_upper_bound(by_level[k], k) for k in sorted(by_level) if k >= 2]
    assert all(a >= b for a, b in zip(bounds, bounds[1:]))


def test_bound_series_rejects_bad_kind_and_level():
    with pytest.raises(ExecutionError):
        BoundSeries(values={}, kind="median")
    series = BoundSeries(values={1: 1.0}, kind="sum")
    series.start([1])
    with pytest.raises(ExecutionError):
        series.update(1, [])


def test_bound_series_empty_l1():
    series = BoundSeries(values={}, kind="sum")
    assert series.start([]) == -inf


def test_bound_series_history_records_levels():
    values = {1: 3.0, 2: 4.0}
    series = BoundSeries(values=values, kind="sum")
    series.start([1, 2])
    series.update(2, [(1, 2)])
    assert [k for k, __ in series.history] == [1, 2]
    assert series.bound == pytest.approx(7.0)
