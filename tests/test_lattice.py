"""The constrained lattice: Apriori equivalence, pruning forms, stepper
protocol, and the MGF ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.onevar import OneVarView
from repro.constraints.parser import parse_constraint
from repro.constraints.pruners import CompiledPruning, compile_onevar
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.mining.lattice import ConstrainedLattice
from tests.conftest import brute_frequent


def run_lattice(transactions, elements, min_count, pruning=None, **kwargs):
    lattice = ConstrainedLattice(
        "S", tuple(elements), transactions, min_count, pruning=pruning, **kwargs
    )
    while lattice.count_and_absorb():
        pass
    return lattice


def test_unconstrained_equals_brute_force(market_db):
    lattice = run_lattice(market_db.transactions, range(1, 7), 3)
    assert lattice.result().all_sets() == brute_frequent(
        market_db.transactions, range(1, 7), 3
    )


@settings(max_examples=50, deadline=None)
@given(
    raw=st.lists(
        st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6),
        min_size=1,
        max_size=25,
    ),
    min_count=st.integers(min_value=1, max_value=5),
)
def test_unconstrained_equals_brute_force_property(raw, min_count):
    transactions = [tuple(sorted(set(t))) for t in raw]
    universe = sorted({i for t in transactions for i in t})
    if not universe:
        return
    lattice = run_lattice(transactions, universe, min_count)
    assert lattice.result().all_sets() == brute_frequent(
        transactions, universe, min_count
    )


def pruned_lattice(market_catalog, market_db, text, min_count=2):
    domain = Domain.items(market_catalog)
    pruning = compile_onevar(OneVarView.of(parse_constraint(text)), domain)
    return run_lattice(market_db.transactions, domain.elements, min_count, pruning)


@pytest.mark.parametrize(
    "text",
    [
        "max(S.Price) <= 40",          # item filter
        "min(S.Price) <= 20",          # required bucket (MGF)
        "S.Type = {snack}",            # filter + bucket
        "sum(S.Price) <= 70",          # anti-monotone check
        "count(S) <= 2",               # anti-monotone check on cardinality
        "avg(S.Price) >= 30",          # bucket relaxation + post filter
        "min(S.Price) = 10",           # filter + bucket
    ],
)
def test_constrained_lattice_matches_filtered_brute_force(
    market_catalog, market_db, text
):
    """Frequent valid sets == frequent sets (oracle) that satisfy the
    constraint (oracle filtering)."""
    from repro.constraints.evaluate import evaluate_constraint

    domain = Domain.items(market_catalog)
    constraint = parse_constraint(text)
    lattice = pruned_lattice(market_catalog, market_db, text)
    mined = lattice.result().all_sets()
    oracle = {
        itemset: support
        for itemset, support in brute_frequent(
            market_db.transactions, domain.elements, 2
        ).items()
        if evaluate_constraint(constraint, {"S": itemset}, {"S": domain})
    }
    assert mined == oracle, text


def test_bucket_lattice_counts_fewer_sets(market_catalog, market_db):
    counters_plain = OpCounters()
    run_lattice(market_db.transactions, range(1, 7), 2, counters=counters_plain)
    counters_bucket = OpCounters()
    domain = Domain.items(market_catalog)
    pruning = compile_onevar(
        OneVarView.of(parse_constraint("min(S.Price) >= 30")), domain
    )
    run_lattice(market_db.transactions, domain.elements, 2, pruning,
                counters=counters_bucket)
    assert counters_bucket.total_counted < counters_plain.total_counted


def test_level1_supports_kept_for_mgf(market_catalog, market_db):
    """Bucket constraints still count all frequent singletons (the MGF
    needs their supports for the reduction constants), but only
    bucket-hitting singletons are valid answers."""
    lattice = pruned_lattice(market_catalog, market_db, "min(S.Price) <= 20")
    assert set(lattice.level1_supports) == {1, 2, 3, 4, 5}  # all frequent items
    valid_singletons = {s for s in lattice.result().frequent[1]}
    assert valid_singletons == {(1,), (2,)}


def test_empty_bucket_yields_no_multi_sets(market_catalog, market_db):
    lattice = pruned_lattice(market_catalog, market_db, "min(S.Price) <= 5")
    result = lattice.result()
    assert all(not sets for level, sets in result.frequent.items())


def test_max_level_cap(market_db):
    lattice = run_lattice(market_db.transactions, range(1, 7), 2, max_level=2)
    assert lattice.result().max_level == 2


def test_stepper_protocol_errors(market_db):
    lattice = ConstrainedLattice("S", tuple(range(1, 7)), market_db.transactions, 2)
    with pytest.raises(ExecutionError):
        lattice.absorb({})
    with pytest.raises(ExecutionError):
        ConstrainedLattice("S", (1,), [], 0)


def test_late_filter_installation_rejected(market_db):
    lattice = ConstrainedLattice("S", tuple(range(1, 7)), market_db.transactions, 2)
    lattice.count_and_absorb()  # level 1
    lattice.count_and_absorb()  # level 2 freezes the order
    with pytest.raises(ExecutionError):
        lattice.install_pruning(
            CompiledPruning(filters=[__import__("repro.constraints.pruners",
                                                fromlist=["ItemFilter"]).ItemFilter(
                frozenset({1}), "late")])
        )


def test_install_filter_after_level1_refilters(market_catalog, market_db):
    from repro.constraints.pruners import ItemFilter

    lattice = ConstrainedLattice(
        "S", tuple(range(1, 7)), market_db.transactions, 2
    )
    lattice.count_and_absorb()
    lattice.install_pruning(
        CompiledPruning(filters=[ItemFilter(frozenset({1, 2, 4}), "test")])
    )
    assert set(lattice.level1_supports) <= {1, 2, 4}
    while lattice.count_and_absorb():
        pass
    mined = lattice.result().all_sets()
    assert all(set(s) <= {1, 2, 4} for s in mined)


def test_candidate_log(market_db):
    lattice = ConstrainedLattice(
        "S", tuple(range(1, 7)), market_db.transactions, 2, keep_candidates=True
    )
    while lattice.count_and_absorb():
        pass
    assert 1 in lattice.candidate_log and 2 in lattice.candidate_log
    assert len(lattice.candidate_log[2]) == lattice.counted_per_level[2]


def test_dynamic_am_check_via_mutable_bound(market_catalog, market_db):
    """A tightening bound installed as an anti-monotone check prunes later
    levels — the Jmax integration mechanism."""
    from repro.constraints.pruners import AntiMonotoneCheck

    domain = Domain.items(market_catalog)
    prices = domain.catalog.column("Price")
    bound_holder = {"bound": 1000.0}

    def check(elements):
        return sum(prices[e] for e in elements) <= bound_holder["bound"]

    lattice = ConstrainedLattice(
        "S", domain.elements, market_db.transactions, 2,
        CompiledPruning(am_checks=[AntiMonotoneCheck(check, "dyn")]),
    )
    lattice.count_and_absorb()  # level 1
    bound_holder["bound"] = 35.0
    while lattice.count_and_absorb():
        pass
    mined = lattice.result().all_sets()
    assert mined  # singletons <= 35 survive
    assert all(sum(prices[e] for e in s) <= 35.0 for s in mined)
