"""Unit tests for the serving layer's cache primitive.

:class:`~repro.serve.cache.LRUCache` backs both serving tiers (result
artifacts and frequency skeletons); these tests pin its three policies —
bounded LRU, lazy TTL expiry, explicit invalidation — and the shared
:class:`~repro.db.stats.CacheStats` accounting, all driven by an
injected fake clock so expiry is deterministic.
"""

import pytest

from repro.db.stats import CacheStats
from repro.errors import ExecutionError
from repro.serve import CacheEntry, LRUCache


class FakeClock:
    """Monotonic clock the tests advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_rejects_bad_parameters():
    with pytest.raises(ExecutionError):
        LRUCache(max_entries=0)
    with pytest.raises(ExecutionError):
        LRUCache(ttl_seconds=0)
    with pytest.raises(ExecutionError):
        LRUCache(ttl_seconds=-1.5)


def test_ttl_none_never_expires():
    clock = FakeClock()
    cache = LRUCache(ttl_seconds=None, clock=clock)
    cache.put("a", "x", 1)
    clock.advance(1e9)
    assert cache.get("a") == "x"


# ----------------------------------------------------------------------
# Bounded LRU
# ----------------------------------------------------------------------
def test_put_get_roundtrip_and_miss():
    cache = LRUCache(max_entries=4)
    assert cache.get("a") is None
    cache.put("a", "alpha", 5)
    assert cache.get("a") == "alpha"
    assert len(cache) == 1
    assert "a" in cache and "b" not in cache


def test_capacity_evicts_least_recently_used():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1, 1)
    cache.put("b", 2, 1)
    cache.put("c", 3, 1)  # evicts "a" (oldest)
    assert cache.get("a") is None
    assert cache.get("b") == 2
    assert cache.get("c") == 3


def test_get_refreshes_recency():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1, 1)
    cache.put("b", 2, 1)
    assert cache.get("a") == 1  # "a" is now most recent
    cache.put("c", 3, 1)  # so "b" is evicted instead
    assert cache.get("b") is None
    assert cache.get("a") == 1


def test_put_replaces_in_place_without_growth():
    stats = CacheStats()
    cache = LRUCache(max_entries=2, stats=stats)
    cache.put("a", "old", 10)
    cache.put("a", "new", 4)
    assert len(cache) == 1
    assert cache.get("a") == "new"
    # The replaced payload's bytes were released, the new ones held.
    assert stats.bytes_held == 4
    assert stats.evictions == 1  # the replacement is metered as one


def test_eviction_releases_bytes():
    stats = CacheStats()
    cache = LRUCache(max_entries=1, stats=stats)
    cache.put("a", 1, 100)
    cache.put("b", 2, 40)
    assert stats.bytes_held == 40
    assert stats.evictions == 1


# ----------------------------------------------------------------------
# TTL (lazy expiry)
# ----------------------------------------------------------------------
def test_ttl_expiry_behaves_as_miss():
    clock = FakeClock()
    stats = CacheStats()
    cache = LRUCache(ttl_seconds=10, clock=clock, stats=stats)
    cache.put("a", "x", 7)
    clock.advance(10)  # exactly the TTL: still live (strict >)
    assert cache.get("a") == "x"
    clock.advance(0.01)
    assert cache.get("a") is None
    assert stats.expirations == 1
    assert stats.evictions == 0
    assert stats.bytes_held == 0
    # The expired entry is physically gone, not just hidden.
    assert "a" not in cache


def test_peek_sees_live_entries_only_and_stays_unmetered():
    clock = FakeClock()
    stats = CacheStats()
    cache = LRUCache(max_entries=2, ttl_seconds=5, clock=clock, stats=stats)
    cache.put("a", "x", 3)
    entry = cache.peek("a")
    assert isinstance(entry, CacheEntry)
    assert entry.value == "x" and entry.nbytes == 3
    assert stats.hits == 0 and stats.misses == 0  # peek never meters
    clock.advance(6)
    assert cache.peek("a") is None  # expired -> invisible
    assert stats.misses == 0
    # peek must not refresh recency either.
    cache2 = LRUCache(max_entries=2)
    cache2.put("a", 1, 1)
    cache2.put("b", 2, 1)
    cache2.peek("a")
    cache2.put("c", 3, 1)
    assert "a" not in cache2  # still the LRU victim despite the peek


def test_refreshed_put_restarts_ttl():
    clock = FakeClock()
    cache = LRUCache(ttl_seconds=10, clock=clock)
    cache.put("a", "x", 1)
    clock.advance(8)
    cache.put("a", "y", 1)  # re-store resets stored_at
    clock.advance(8)
    assert cache.get("a") == "y"


# ----------------------------------------------------------------------
# Explicit invalidation
# ----------------------------------------------------------------------
def test_invalidate_key():
    stats = CacheStats()
    cache = LRUCache(stats=stats)
    cache.put("a", 1, 9)
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert cache.get("a") is None
    assert stats.invalidations == 1
    assert stats.bytes_held == 0


def test_invalidate_tag_targets_one_group():
    stats = CacheStats()
    cache = LRUCache(stats=stats)
    cache.put("a", 1, 1, tag="ds1")
    cache.put("b", 2, 1, tag="ds1")
    cache.put("c", 3, 1, tag="ds2")
    assert cache.invalidate_tag("ds1") == 2
    assert cache.get("c") == 3
    assert stats.invalidations == 2
    assert len(cache) == 1


def test_clear_drops_everything():
    stats = CacheStats()
    cache = LRUCache(stats=stats)
    cache.put("a", 1, 2)
    cache.put("b", 2, 3)
    assert cache.clear() == 2
    assert len(cache) == 0
    assert stats.invalidations == 2
    assert stats.bytes_held == 0


# ----------------------------------------------------------------------
# Stats routing (one CacheStats, two tiers)
# ----------------------------------------------------------------------
def test_result_tier_stats_accounting():
    stats = CacheStats()
    cache = LRUCache(stats=stats, record_result_stats=True)
    cache.get("a")
    cache.put("a", 1, 5)
    cache.get("a")
    assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
    assert stats.skeleton_hits == 0 and stats.skeleton_misses == 0
    assert stats.hit_rate == 0.5


def test_skeleton_tier_routes_to_skeleton_counters():
    stats = CacheStats()
    cache = LRUCache(stats=stats, record_result_stats=False)
    cache.get("s")
    cache.put("s", object(), 11)
    cache.get("s")
    assert (stats.skeleton_hits, stats.skeleton_misses) == (1, 1)
    # Skeleton puts hold bytes but do not inflate the result-tier
    # ``stores`` counter (builds are metered by the service).
    assert (stats.hits, stats.misses, stats.stores) == (0, 0, 0)
    assert stats.bytes_held == 11


def test_shared_stats_across_tiers():
    stats = CacheStats()
    results = LRUCache(stats=stats, record_result_stats=True)
    skeletons = LRUCache(stats=stats, record_result_stats=False)
    results.put("r", "text", 100)
    skeletons.put("s", object(), 50)
    assert stats.bytes_held == 150
    summary = stats.summary()
    assert "store" in summary
