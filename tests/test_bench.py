"""Benchmark harness and reporting (unit level; the real experiments run
under ``pytest benchmarks/ --benchmark-only``)."""

import pytest

from repro.bench.experiments import (
    ExperimentResult,
    fig8a_speedups,
    fig8b_speedups,
)
from repro.bench.harness import compare_strategies, run_strategy
from repro.bench.report import render_series, render_table
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload


def test_render_table_alignment():
    text = render_table(["a", "bb"], [[1, 2.5], ["xxx", "y"]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "2.50" in text
    assert all(len(line) == len(lines[1]) or i == 0
               for i, line in enumerate(lines))


def test_render_series_has_bars():
    text = render_series("title", [1, 2], [[1.0, 2.0], [3.0, 4.0]],
                         ["a", "b"])
    assert text.count("#") > 0
    assert "a" in text and "b" in text


def test_experiment_result_accessors():
    result = ExperimentResult(
        experiment="x", headers=["k", "v"], rows=[["a", 1], ["b", 2]],
        paper="ref", notes=["n"],
    )
    assert result.column("v") == [1, 2]
    rendered = result.render()
    assert "paper reported: ref" in rendered and "note: n" in rendered


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=200)


def test_run_strategy_kinds(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.05,
              constraints=["max(S.Price) <= min(T.Price)"])
    optimizer_run = run_strategy("opt", workload.db, cfq)
    baseline_run = run_strategy("base", workload.db, cfq, kind="apriori_plus")
    assert optimizer_run.cost > 0 and baseline_run.cost > 0
    assert optimizer_run.speedup_over(baseline_run) > 1.0
    assert set(optimizer_run.frequent_sizes) == {"S", "T"}
    with pytest.raises(ValueError):
        run_strategy("x", workload.db, cfq, kind="mystery")


def test_compare_strategies(workload):
    cfq = CFQ(domains=workload.domains, minsup=0.05,
              constraints=["S.Type = T.Type"])
    runs = compare_strategies(
        workload.db, cfq,
        [
            {"name": "apriori+", "kind": "apriori_plus"},
            {"name": "optimizer"},
            {"name": "no-reduction", "use_reduction": False},
        ],
    )
    assert [r.name for r in runs] == ["apriori+", "optimizer", "no-reduction"]


def test_smoke_scale_experiments_preserve_shape():
    """A fast sanity pass over the two headline figures; the full-scale
    versions run in the benchmark suite."""
    fig8a = fig8a_speedups(overlaps=(16.6, 83.4), scale="smoke")
    speedups = fig8a.column("speedup")
    assert speedups[0] > speedups[1] >= 1.0

    fig8b = fig8b_speedups(overlaps=(20.0, 80.0), scale="smoke")
    combined = fig8b.column("speedup_1var_2var")
    one_var = fig8b.column("speedup_1var_only")
    assert combined[0] > combined[1]
    assert all(c > o for c, o in zip(combined, one_var))


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        fig8a_speedups(scale="galactic")


def test_run_strategy_routes_through_a_service():
    from repro.serve import QueryService

    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    service = QueryService()
    cold = run_strategy("cold", workload.db, cfq, service=service)
    warm = run_strategy("warm", workload.db, cfq, service=service)
    assert (cold.result.cache_info or {}).get("source") == "cold"
    assert (warm.result.cache_info or {}).get("source") == "result-cache"
    # Warm runs restore the cold run's deterministic op-cost exactly.
    assert warm.cost == cold.cost
    assert warm.frequent_sizes == cold.frequent_sizes


def test_serving_tables_smoke_shape():
    from repro.bench.experiments import (
        serving_refinement_table,
        serving_repeated_table,
    )

    repeated = serving_repeated_table(scale="smoke")
    assert repeated.headers == [
        "query", "cold_seconds", "warm_seconds", "speedup", "source"
    ]
    assert all(source == "result-cache" for source in repeated.column("source"))
    assert all(s > 1.0 for s in repeated.column("speedup"))

    refinement = serving_refinement_table(scale="smoke")
    sources = refinement.column("source")
    assert sources, "refinement session must produce rows"
    assert all(source == "skeleton" for source in sources)
    assert any("skeleton build" in note for note in refinement.notes)
