"""The degradation ladder, one registered fault site at a time.

For every site in :data:`repro.runtime.faults.FAULT_SITES` this file
injects the site's characteristic faults into a live
:class:`~repro.serve.QueryService` (or checkpoint manager / journal) and
asserts the three-part contract of ``docs/fault-tolerance.md``:

1. **never wrong** — the served answer is bit-identical to a fault-free
   cold run;
2. **visibly degraded** — the failure is counted
   (``CacheStats.disk_errors``/``quarantined``, journal ``io_errors``,
   checkpoint ``failures``) and narrated in the event journal
   (``disk_error``, ``result_quarantine``, ``disk_degraded``, ...);
3. **recoverable** — once the faults clear (``plan.clear_rules()``)
   and the breaker's cooldown elapses, the service returns to full
   health (artifacts persist again, ``disk_recovered`` is journaled).
"""

from functools import lru_cache

import os

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.obs.events import EventJournal
from repro.runtime import faults
from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointManager,
    run_fingerprint,
)
from repro.db.stats import OpCounters
from repro.runtime.faults import FaultPlan
from repro.serve import QueryService

WORKLOAD = quickstart_workload(n_transactions=120)
MINSUPS = (0.03, 0.05, 0.06, 0.08)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.uninstall()
    yield
    faults.uninstall()


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@lru_cache(maxsize=None)
def _cold(minsup):
    result = CFQOptimizer(WORKLOAD.cfq(minsup=minsup)).execute(WORKLOAD.db)
    return _answer(result)


def _answer(result):
    return {
        "frequent_valid": {
            var: tuple(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": tuple(result.pairs(limit=None)),
        "bounds": {
            key: tuple(history)
            for key, history in result.raw.bound_histories.items()
        },
    }


def _service(tmp_path, clock, **kwargs):
    kwargs.setdefault("disk_retries", 1)
    kwargs.setdefault("disk_backoff_seconds", 0.0)
    kwargs.setdefault("disk_failure_threshold", 2)
    kwargs.setdefault("disk_cooldown_seconds", 30.0)
    return QueryService(cache_dir=str(tmp_path / "cache"), clock=clock,
                        **kwargs)


def _serve(service, minsup):
    result = service.execute(WORKLOAD.db, WORKLOAD.cfq(minsup=minsup))
    assert result.status == "complete"
    assert _answer(result) == _cold(minsup)
    return result


def _journal_kinds(service):
    return [e["kind"] for e in service.telemetry.journal.tail()]


# ----------------------------------------------------------------------
# serve.disk.write / serve.disk.replace
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind,site", [
    ("enospc", "serve.disk.write"),
    ("eacces", "serve.disk.write"),
    ("torn", "serve.disk.write"),
    ("rename", "serve.disk.replace"),
])
def test_write_faults_leave_entry_memory_only(tmp_path, kind, site):
    clock = FakeClock()
    service = _service(tmp_path, clock)
    plan = FaultPlan().add(site, kind, times=-1)
    with faults.installed(plan):
        _serve(service, 0.03)
    assert plan.fired_kinds(site), "the planned fault never fired"
    assert service.stats.disk_errors >= 1
    assert "disk_error" in _journal_kinds(service)
    # No artifact (and no torn temp file shadowing one) on disk ...
    cache = tmp_path / "cache"
    assert not list(cache.glob("*.json"))
    # ... but the *memory* tier still warm-serves bit-identically.
    warm = _serve(service, 0.03)
    assert warm.cache_info["source"] == "result-cache"
    # Faults cleared: the next store persists again (full health).
    _serve(service, 0.05)
    assert list(cache.glob("*.json"))


def test_persistent_write_faults_open_the_breaker_then_recover(tmp_path):
    clock = FakeClock()
    service = _service(tmp_path, clock)
    plan = FaultPlan().add("serve.disk.write", "enospc", times=-1)
    with faults.installed(plan):
        _serve(service, 0.03)
        _serve(service, 0.05)  # second failure trips threshold=2
        assert service.disk_breaker.state == "open"
        kinds = _journal_kinds(service)
        assert "disk_degraded" in kinds
        # Open breaker: the disk tier is skipped wholesale — no new
        # site hits even though this store "fails" to persist.
        hits_before = plan.hits.get("serve.disk.write", 0)
        _serve(service, 0.06)
        assert plan.hits.get("serve.disk.write", 0) == hits_before
        # Faults clear + cooldown elapses: half-open probe re-closes.
        plan.clear_rules()
        clock.now += 31.0
        _serve(service, 0.08)
    assert service.disk_breaker.state == "closed"
    assert "disk_recovered" in _journal_kinds(service)
    assert list((tmp_path / "cache").glob("*.json"))
    snap = service.disk_breaker.snapshot()
    assert snap["opens"] == 1 and snap["closes"] == 1


# ----------------------------------------------------------------------
# serve.disk.read
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["eio", "eacces", "enospc"])
def test_unreadable_artifact_is_a_miss_not_a_crash(tmp_path, kind):
    clock = FakeClock()
    service = _service(tmp_path, clock, disk_retries=0)
    _serve(service, 0.03)  # stores to disk fault-free
    service.clear()  # force the next lookup through the disk tier
    plan = FaultPlan().add("serve.disk.read", kind, times=-1)
    with faults.installed(plan):
        result = _serve(service, 0.03)  # cold re-mine, bit-identical
    assert result.cache_info["source"] == "cold"
    assert service.stats.disk_errors >= 1
    # The artifact itself is intact; once faults clear it serves again.
    service.clear()
    warm = _serve(service, 0.03)
    assert warm.cache_info["source"] == "result-cache"
    assert warm.cache_info["tier"] == "disk"


def test_read_retry_rides_through_a_transient_fault(tmp_path):
    clock = FakeClock()
    service = _service(tmp_path, clock, disk_retries=1)
    _serve(service, 0.03)
    service.clear()
    plan = FaultPlan().add("serve.disk.read", "eio", times=1)
    with faults.installed(plan):
        warm = _serve(service, 0.03)
    # One fault, one retry: still a warm disk hit, no degradation.
    assert warm.cache_info["source"] == "result-cache"
    assert service.stats.disk_errors == 0


@pytest.mark.parametrize("kind", ["short", "corrupt"])
def test_corrupt_reads_quarantine_and_fall_through_cold(tmp_path, kind):
    clock = FakeClock()
    service = _service(tmp_path, clock, disk_retries=0)
    _serve(service, 0.03)
    service.clear()
    cache = tmp_path / "cache"
    [artifact] = cache.glob("*.json")
    plan = FaultPlan(seed=5).add("serve.disk.read", kind, times=1)
    with faults.installed(plan):
        result = _serve(service, 0.03)
    assert result.cache_info["source"] == "cold"
    assert service.stats.quarantined == 1
    assert "result_quarantine" in _journal_kinds(service)
    # Renamed aside, never re-read; the cold run re-stored a *fresh*
    # artifact at the original path, which now warm-serves again.
    assert artifact.with_suffix(".json.quarantined").exists()
    service.clear()
    warm = _serve(service, 0.03)
    assert warm.cache_info["source"] == "result-cache"
    assert warm.cache_info["tier"] == "disk"


# ----------------------------------------------------------------------
# serve.disk.remove (TTL expiry dropping the disk copy)
# ----------------------------------------------------------------------
def test_failed_disk_drop_is_absorbed(tmp_path):
    clock = FakeClock()
    service = QueryService(cache_dir=str(tmp_path / "cache"), clock=clock,
                           ttl_seconds=60.0, disk_backoff_seconds=0.0)
    _serve(service, 0.03)
    clock.now += 61.0  # expire the memory entry; lookup drops disk too
    plan = FaultPlan().add("serve.disk.remove", "eio", times=-1)
    with faults.installed(plan):
        result = _serve(service, 0.03)  # expired ≡ cold, still identical
    assert result.cache_info["source"] == "cold"
    assert plan.fired_kinds("serve.disk.remove")
    assert service.stats.disk_errors >= 1


# ----------------------------------------------------------------------
# journal.open / journal.write / journal.rotate
# ----------------------------------------------------------------------
def test_journal_write_faults_never_reach_the_service(tmp_path):
    clock = FakeClock()
    plan = FaultPlan().add("journal.write", "eio", times=-1)
    with faults.installed(plan):
        service = QueryService(
            cache_dir=str(tmp_path / "cache"), clock=clock,
            journal_path=str(tmp_path / "journal.jsonl"),
            disk_backoff_seconds=0.0,
        )
        _serve(service, 0.03)  # no exception anywhere
    journal = service.telemetry.journal
    assert journal.io_errors >= 1
    assert journal.degraded  # disk file abandoned ...
    assert len(journal) > 0  # ... memory window keeps narrating


def test_journal_open_fault_degrades_to_memory_only(tmp_path):
    plan = FaultPlan().add("journal.open", "eacces")
    with faults.installed(plan):
        journal = EventJournal(path=str(tmp_path / "j.jsonl"))
    assert journal.degraded
    event = journal.record("result_hit", tier="memory")
    assert event["seq"] == 1  # recording continues in memory


def test_journal_rotation_fault_is_atomic_or_abandoned(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = EventJournal(path=path, max_bytes=64, max_files=2)
    plan = FaultPlan().add("journal.rotate", "eio")
    with faults.installed(plan):
        for _ in range(6):
            journal.record("result_hit", tier="memory")
    assert journal.rotation_failures >= 1
    assert journal.io_errors == 0  # live file reopened, appends continue
    assert not journal.degraded
    # Later rotations (fault cleared) succeed normally.
    for _ in range(6):
        journal.record("result_hit", tier="memory")
    assert journal.rotations >= 1
    snap = journal.snapshot()
    assert snap["rotation_failures"] == journal.rotation_failures


# ----------------------------------------------------------------------
# checkpoint.save / checkpoint.load
# ----------------------------------------------------------------------
def _checkpoint(fp):
    return Checkpoint(fingerprint=fp, events=(),
                      counters=OpCounters().snapshot())


def test_checkpoint_save_faults_degrade_to_checkpointless(tmp_path):
    manager = CheckpointManager(str(tmp_path), "f" * 64)
    plan = FaultPlan().add("checkpoint.save", "enospc", times=-1)
    with faults.installed(plan):
        for _ in range(manager.FAILURE_THRESHOLD):
            assert manager.save(_checkpoint("f" * 64)) is None
        assert manager.degraded
        hits = plan.hits["checkpoint.save"]
        assert manager.save(_checkpoint("f" * 64)) is None  # skipped
        assert plan.hits["checkpoint.save"] == hits  # no further I/O
    assert manager.failures == manager.FAILURE_THRESHOLD
    assert manager.saves == 0


def test_checkpointed_run_survives_save_faults_bit_identically(tmp_path):
    cfq = WORKLOAD.cfq(minsup=0.03)
    plan = FaultPlan().add("checkpoint.save", "enospc", times=-1)
    with faults.installed(plan):
        result = CFQOptimizer(cfq).execute(
            WORKLOAD.db, checkpoint_dir=str(tmp_path)
        )
    assert result.status == "complete"
    assert plan.fired_kinds("checkpoint.save")
    assert _answer(result) == _cold(0.03)


def test_unreadable_checkpoint_starts_fresh(tmp_path):
    fp = run_fingerprint("q", WORKLOAD.db, {})
    manager = CheckpointManager(str(tmp_path), fp)
    manager.save(_checkpoint(fp))
    plan = FaultPlan().add("checkpoint.load", "eio")
    with faults.installed(plan):
        assert manager.load_for_resume() is None  # fresh start, no crash
    # Fault cleared: the stored checkpoint is still there and loads.
    assert manager.load_for_resume() is not None


def test_corrupt_checkpoint_read_is_quarantined(tmp_path):
    fp = run_fingerprint("q", WORKLOAD.db, {})
    manager = CheckpointManager(str(tmp_path), fp)
    manager.save(_checkpoint(fp))
    plan = FaultPlan(seed=2).add("checkpoint.load", "corrupt")
    with faults.installed(plan):
        assert manager.load_for_resume() is None
    assert manager.quarantined == 1
    assert os.path.exists(manager.path + ".quarantined")
    assert not os.path.exists(manager.path)  # never re-read
    assert manager.load_for_resume() is None  # fresh start thereafter


# ----------------------------------------------------------------------
# skeleton.refresh
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["error", "eio"])
def test_refresh_faults_drop_skeletons_and_fall_back_cold(tmp_path, kind):
    clock = FakeClock()
    service = _service(tmp_path, clock)
    cfqs = [WORKLOAD.cfq(minsup=m) for m in (0.03, 0.05)]
    service.execute_batch(WORKLOAD.db, cfqs)  # builds skeletons
    new_db, delta = WORKLOAD.db.append([list(WORKLOAD.db.transactions[0])])
    plan = FaultPlan().add("skeleton.refresh", kind, times=-1)
    with faults.installed(plan):
        report = service.apply_delta(new_db, delta)
    assert plan.fired_kinds("skeleton.refresh")
    assert report.skeletons_dropped >= 1
    assert report.skeletons_refreshed == 0
    assert "refresh_fallback" in _journal_kinds(service)
    # The dropped skeletons force cold rebuilds — still bit-identical.
    batch = service.execute_batch(new_db, cfqs)
    for item in batch.items:
        cold = CFQOptimizer(item.cfq).execute(new_db)
        assert _answer(item.result) == _answer(cold)
    # Faults cleared: the *next* delta migrates skeletons again.
    newer_db, delta2 = new_db.append([list(new_db.transactions[1])])
    report2 = service.apply_delta(newer_db, delta2)
    assert report2.skeletons_refreshed >= 1


# ----------------------------------------------------------------------
# clock (TTL jumps through the fault plan's wrapped clock)
# ----------------------------------------------------------------------
def test_clock_jump_expires_ttl_but_answers_stay_identical(tmp_path):
    clock = FakeClock()
    plan = FaultPlan().add("clock", "clock_jump", jump_seconds=3600.0,
                           after=8)
    jumpy = plan.wrap_clock(clock)
    service = QueryService(cache_dir=str(tmp_path / "cache"), clock=jumpy,
                           ttl_seconds=60.0, disk_backoff_seconds=0.0)
    first = _serve(service, 0.03)
    assert first.cache_info["source"] == "cold"
    # Eventually the jump fires, TTL-expiring everything; whatever tier
    # answers, the answer is the cold answer.
    for _ in range(6):
        _serve(service, 0.03)
    assert plan.fired_kinds("clock") == ["clock_jump"]
