"""Threaded regression pins for serving-layer race fixes.

Each test targets one shared structure the multi-tenant query server
hammers from many worker threads, and encodes the invariant whose
violation was the original bug: torn read-modify-writes in
``CacheStats``, a ``dictionary changed size during iteration`` eviction
loop in ``_IdentityMemo``, LRU/TTL accounting drift in ``LRUCache``,
lost increments in ``MetricsRegistry``, and duplicate sequence numbers
in ``EventJournal``.

Races are probabilistic, so the hammers use barriers (maximal
contention at the racy window) and assert *exact* totals — a lost
update anywhere shows up as an off-by-N, not a flake.
"""

import threading

from repro.db.stats import CacheStats
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import LRUCache
from repro.serve.fingerprint import _IdentityMemo

THREADS = 8
ROUNDS = 400


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def _hammer(n_threads, target):
    """Start ``n_threads`` workers on ``target(i)`` behind one barrier
    and re-raise the first worker exception (the pre-fix code *threw*
    from some of these races — that must stay a test failure, not a
    silently dead thread)."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(i):
        try:
            barrier.wait(timeout=10)
            target(i)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors


# ----------------------------------------------------------------------
# CacheStats: every bump lands
# ----------------------------------------------------------------------
def test_cache_stats_bump_is_exact_under_contention():
    stats = CacheStats()

    def worker(i):
        for _ in range(ROUNDS):
            stats.record_hit()
            stats.record_miss()
            stats.record_store(3)
            stats.record_eviction(1)
            stats.record_eviction(1, expired=True)
            stats.record_invalidation(1)

    _hammer(THREADS, worker)
    total = THREADS * ROUNDS
    assert stats.hits == total
    assert stats.misses == total
    assert stats.stores == total
    assert stats.evictions == total
    assert stats.expirations == total
    assert stats.invalidations == total
    assert stats.bytes_held == 0  # +3 then -1-1-1 per round, exactly


def test_cache_stats_disk_promotion_is_atomic():
    stats = CacheStats()

    def worker(i):
        for _ in range(ROUNDS):
            stats.record_miss()
            stats.record_disk_promotion()  # miss -> hit conversion

    _hammer(THREADS, worker)
    assert stats.hits == THREADS * ROUNDS
    assert stats.misses == 0


# ----------------------------------------------------------------------
# _IdentityMemo: locked eviction loop
# ----------------------------------------------------------------------
def test_identity_memo_eviction_survives_concurrent_stores():
    memo = _IdentityMemo(limit=4)
    # Far more pinned objects than the limit, live across the whole
    # test, so every store runs the eviction loop other threads are
    # mutating under — the pre-fix crash site.
    objects = [object() for _ in range(THREADS * 32)]
    digests = [f"digest-{i}" for i in range(len(objects))]

    def worker(i):
        for round_no in range(ROUNDS // 4):
            for j, obj in enumerate(objects):
                got = memo.digest(obj, lambda j=j: digests[j])
                # Identity hits must never cross wires between objects.
                assert got == digests[j]

    _hammer(THREADS, worker)
    assert len(memo._entries) <= memo.limit


def test_identity_memo_returns_memoized_digest_for_live_object():
    memo = _IdentityMemo(limit=4)
    obj = object()
    computes = []

    def compute():
        computes.append(1)
        return "d"

    def worker(i):
        for _ in range(ROUNDS):
            assert memo.digest(obj, compute) == "d"

    _hammer(THREADS, worker)
    # The object stays hot (limit 4, one key): after the racy warmup the
    # digest is memoized, so computes stay far below the call count.
    assert len(computes) < THREADS * ROUNDS


# ----------------------------------------------------------------------
# LRUCache: structure + accounting stay consistent
# ----------------------------------------------------------------------
def test_lru_cache_accounting_survives_put_get_invalidate_races():
    clock = FakeClock()
    cache = LRUCache(max_entries=8, ttl_seconds=10.0, clock=clock)

    def worker(i):
        for round_no in range(ROUNDS):
            key = f"k{(i * ROUNDS + round_no) % 24}"
            cache.put(key, round_no, nbytes=5, tag=f"tag{i % 2}")
            cache.get(key)
            cache.get(f"k{round_no % 24}")
            if round_no % 7 == 0:
                cache.invalidate(key)
            if round_no % 31 == 0:
                cache.invalidate_tag(f"tag{(i + 1) % 2}")
            if round_no % 97 == 0:
                clock.now += 3.0  # stagger entries toward TTL expiry

    _hammer(THREADS, worker)
    assert len(cache) <= cache.max_entries
    # bytes_held must equal the bytes of the entries actually resident:
    # any torn eviction/store pairing drifts this for good.
    live_bytes = sum(entry.nbytes for _, entry in cache.items())
    assert cache.stats.bytes_held == live_bytes
    stats = cache.stats
    arrivals = stats.stores
    departures = (
        stats.evictions + stats.expirations + stats.invalidations + len(cache)
    )
    assert arrivals == departures


def test_lru_cache_ttl_expiry_is_metered_once():
    clock = FakeClock()
    cache = LRUCache(max_entries=64, ttl_seconds=1.0, clock=clock)
    for i in range(16):
        cache.put(f"k{i}", i, nbytes=2)
    clock.now += 2.0  # everything is now expired

    def worker(i):
        for j in range(16):
            assert cache.get(f"k{j}") is None

    _hammer(THREADS, worker)
    # 16 entries expired exactly once each, no double-delete double
    # counting from concurrent expiry of the same entry.
    assert cache.stats.expirations == 16
    assert cache.stats.bytes_held == 0
    assert len(cache) == 0


# ----------------------------------------------------------------------
# MetricsRegistry: no lost increments or observations
# ----------------------------------------------------------------------
def test_metrics_registry_counts_exactly_under_contention():
    metrics = MetricsRegistry()

    def worker(i):
        for _ in range(ROUNDS):
            metrics.inc("requests", tenant=f"t{i % 2}")
            metrics.observe("latency", 0.01 * (i + 1))
            metrics.set_gauge("depth", i)

    _hammer(THREADS, worker)
    total = sum(
        metrics.counter("requests", tenant=f"t{i}") for i in range(2)
    )
    assert total == THREADS * ROUNDS
    histogram = metrics.histogram("latency")
    assert histogram is not None
    assert histogram.count == THREADS * ROUNDS
    assert metrics.gauge("depth") in set(range(THREADS))


# ----------------------------------------------------------------------
# EventJournal: sequence numbers never collide
# ----------------------------------------------------------------------
def test_event_journal_sequence_is_gapless_under_contention():
    journal = EventJournal(max_events=THREADS * ROUNDS + 1)
    seen = [None] * THREADS

    def worker(i):
        seqs = []
        for _ in range(ROUNDS):
            event = journal.record("server_admit", tenant=f"t{i}")
            seqs.append(event["seq"])
        seen[i] = seqs

    _hammer(THREADS, worker)
    all_seqs = [seq for seqs in seen for seq in seqs]
    total = THREADS * ROUNDS
    # Unique, gapless, and exactly one per record call: a torn
    # ``seq += 1`` collides two events on one number and skips another.
    assert sorted(all_seqs) == list(range(1, total + 1))
    assert journal.seq == total
    assert len(journal.tail()) == total
