"""QueryService semantics: fingerprints, tiers, batches, fallbacks, CLI.

The differential suite (``test_serve_differential.py``) proves warm
answers bit-identical; this file pins the *mechanics* around them — what
is keyed on what, which tier answers which request, when the service
must fall back to a cold run, and how the CLI surfaces it all.
"""

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.serve import (
    QueryService,
    dataset_fingerprint,
    domain_fingerprint,
    options_fingerprint,
    query_fingerprint,
    result_key,
)
import repro.serve.service as service_module
from repro.cli import main


@pytest.fixture(scope="module")
def workload():
    return quickstart_workload(n_transactions=200)


def _options(**overrides):
    options = {"dovetail": True, "use_reduction": True, "use_jmax": True,
               "reduction_rounds": 1}
    options.update(overrides)
    return options


# ----------------------------------------------------------------------
# Fingerprints: everything answer-affecting is in the key
# ----------------------------------------------------------------------
def test_dataset_fingerprint_is_content_and_order_sensitive(workload):
    base = dataset_fingerprint(workload.db)
    transactions = list(workload.db.transactions)
    assert dataset_fingerprint(TransactionDatabase(transactions)) == base
    assert dataset_fingerprint(
        TransactionDatabase(transactions[1:])
    ) != base
    assert dataset_fingerprint(
        TransactionDatabase(list(reversed(transactions)))
    ) != base


def test_query_fingerprint_sees_minsup(workload):
    """``str(CFQ)`` omits support thresholds, so the fingerprint must add
    them explicitly — two queries differing only in minsup share their
    rendering but must never share a cache key."""
    loose = workload.cfq(minsup=0.02)
    tight = workload.cfq(minsup=0.05)
    assert str(loose) == str(tight)
    assert query_fingerprint(loose, workload.db) != query_fingerprint(
        tight, workload.db
    )


def test_domain_fingerprint_sees_catalog_edits(workload):
    """Editing one attribute value (a price) must change the domain
    fingerprint: cached lattice *supports* would survive the edit, but
    every constraint evaluated over the attribute would not."""
    base = domain_fingerprint(workload.domains["S"])
    types = dict(workload.catalog.column("Type"))
    prices = dict(workload.catalog.column("Price"))
    assert domain_fingerprint(
        Domain.items(ItemCatalog({"Type": types, "Price": prices}))
    ) == base
    prices[0] += 1.0
    edited = Domain.items(ItemCatalog({"Type": types, "Price": prices}))
    assert domain_fingerprint(edited) != base


def test_result_key_sees_engine_options(workload):
    cfq = workload.cfq()
    default = result_key(cfq, workload.db, _options())
    assert result_key(cfq, workload.db, _options(use_jmax=False)) != default
    assert result_key(cfq, workload.db, _options(reduction_rounds=2)) != default
    # Non-answer-affecting keys are ignored entirely.
    assert options_fingerprint(_options(backend="vertical")) == (
        options_fingerprint(_options())
    )


def test_differently_optioned_runs_never_cross_hit(workload):
    cfq = workload.cfq()
    service = QueryService()
    with_jmax = service.execute(workload.db, cfq)
    without = service.execute(workload.db, cfq, use_jmax=False)
    assert without.cache_info["source"] == "cold"  # distinct key
    warm = service.execute(workload.db, cfq)
    assert warm.cache_info["source"] == "result-cache"
    assert service.stats.stores == 2
    assert with_jmax.status == without.status == "complete"


def test_service_as_optimizer_cache_hook_shares_keys(workload):
    """``optimizer.execute(db, cache=service)`` and
    ``service.execute(db, cfq)`` must agree on the cache key (the service
    normalizes unspecified options to the optimizer defaults)."""
    cfq = workload.cfq()
    service = QueryService()
    cold = CFQOptimizer(cfq).execute(workload.db, cache=service)
    assert cold.cache_info["source"] == "cold"
    warm = service.execute(workload.db, cfq)
    assert warm.cache_info["source"] == "result-cache"


# ----------------------------------------------------------------------
# Tier selection
# ----------------------------------------------------------------------
def test_single_execute_never_builds_skeletons(workload):
    service = QueryService()
    service.execute(workload.db, workload.cfq())
    service.execute(workload.db, workload.cfq(minsup=0.05))
    assert service.stats.skeleton_builds == 0


def test_batch_builds_one_skeleton_per_domain_at_union_threshold(workload):
    """S and T share the item domain, so a mixed-threshold batch mines
    exactly one skeleton — at the weakest threshold in the batch."""
    service = QueryService()
    loose = workload.cfq(minsup=0.02)
    tight = workload.cfq(minsup=0.06)
    report = service.execute_batch(workload.db, [tight, loose])
    assert service.stats.skeleton_builds == 1
    assert [item.source for item in report.items] == ["skeleton", "skeleton"]
    (key,) = list(service._skeletons.keys())
    skeleton = service._skeletons.peek(key).value
    assert skeleton.min_count == workload.db.min_count(0.02)


def test_batch_reuses_skeletons_and_prefers_result_cache(workload):
    service = QueryService()
    cfq = workload.cfq()
    service.execute(workload.db, cfq)  # cold, stored in the result cache
    report = service.execute_batch(
        workload.db, [cfq, workload.cfq(minsup=0.05)]
    )
    assert [item.source for item in report.items] == [
        "result-cache", "skeleton"
    ]
    again = service.execute_batch(workload.db, [workload.cfq(minsup=0.08)])
    assert again.items[0].source == "skeleton"
    assert service.stats.skeleton_builds == 1  # built once, reused twice


def test_batch_rebuilds_when_a_weaker_threshold_arrives(workload):
    service = QueryService()
    service.execute_batch(workload.db, [workload.cfq(minsup=0.06)])
    assert service.stats.skeleton_builds == 1
    # A weaker threshold cannot be served by the tighter skeleton.
    service.execute_batch(workload.db, [workload.cfq(minsup=0.02)])
    assert service.stats.skeleton_builds == 2


def test_prepare_warms_the_skeleton_tier_for_single_executes(workload):
    service = QueryService()
    cfq = workload.cfq()
    assert service.prepare(workload.db, [cfq]) == 1
    assert service.stats.skeleton_builds == 1
    result = service.execute(workload.db, cfq)
    assert result.cache_info["source"] == "skeleton"


def test_single_execute_falls_back_cold_when_skeleton_too_tight(workload):
    service = QueryService()
    service.prepare(workload.db, [workload.cfq(minsup=0.06)])
    result = service.execute(workload.db, workload.cfq(minsup=0.02))
    assert result.cache_info["source"] == "cold"


# ----------------------------------------------------------------------
# Fallback-to-cold triggers
# ----------------------------------------------------------------------
def test_interrupted_skeleton_build_falls_back_to_cold(workload, monkeypatch):
    """A guard trip during skeleton mining must not poison the tier: the
    domain is reported failed, nothing is cached, and every query of the
    batch completes via the cold path (and is stored normally)."""

    def exploding_build(*args, **kwargs):
        raise RunInterrupted("deadline tripped mid-skeleton")

    monkeypatch.setattr(service_module, "build_skeleton", exploding_build)
    service = QueryService()
    report = service.execute_batch(workload.db, [workload.cfq()])
    assert len(report.failed_domains) == 1
    (item,) = report.items
    assert item.source == "cold"
    assert item.result.status == "complete"
    assert service.stats.skeleton_builds == 0
    assert service.stats.stores == 1  # the cold fallback was cached


def test_bypass_options_skip_every_tier(workload, tmp_path):
    service = QueryService()
    cfq = workload.cfq()
    checkpointed = service.execute(
        workload.db, cfq, checkpoint_dir=str(tmp_path / "ckpt")
    )
    assert checkpointed.cache_info is None
    assert service.stats.stores == 0 and service.stats.misses == 0
    kept = service.execute(workload.db, cfq, keep_candidates=True)
    assert kept.cache_info is None
    assert service.stats.stores == 0


def test_batch_rejects_bypass_options(workload):
    service = QueryService()
    with pytest.raises(ValueError):
        service.execute_batch(workload.db, [workload.cfq()], resume=True)
    with pytest.raises(ValueError):
        service.execute_batch(
            workload.db, [workload.cfq()], keep_candidates=True
        )


def test_partial_results_are_never_stored(workload):
    from repro.runtime.guard import RunGuard

    service = QueryService()
    guard = RunGuard(max_candidates=1)
    partial = service.execute(workload.db, workload.cfq(), guard=guard)
    assert partial.status == "partial"
    assert service.stats.stores == 0
    # And the next un-guarded run is a plain cold run, not a hit.
    complete = service.execute(workload.db, workload.cfq())
    assert complete.cache_info["source"] == "cold"
    assert complete.status == "complete"


# ----------------------------------------------------------------------
# Invalidation and the disk tier
# ----------------------------------------------------------------------
def test_invalidate_drops_both_tiers_and_disk(workload, tmp_path):
    service = QueryService(cache_dir=str(tmp_path))
    cfq = workload.cfq()
    service.execute(workload.db, cfq)  # cold -> result tier + disk
    service.execute_batch(workload.db, [workload.cfq(minsup=0.05)])  # skeleton
    assert len(list(tmp_path.glob("*.json"))) >= 1
    removed = service.invalidate(workload.db)
    assert removed >= 2  # one result entry + one skeleton
    assert list(tmp_path.glob("*.json")) == []
    cold_again = service.execute(workload.db, cfq)
    assert cold_again.cache_info["source"] == "cold"
    assert service.stats.invalidations >= 1


def test_clear_keeps_disk_artifacts(workload, tmp_path):
    service = QueryService(cache_dir=str(tmp_path))
    cfq = workload.cfq()
    service.execute(workload.db, cfq)
    service.clear()
    warm = service.execute(workload.db, cfq)
    assert warm.cache_info["source"] == "result-cache"  # reloaded from disk


def test_invalidate_targets_one_dataset_only(workload):
    other_db = TransactionDatabase(list(workload.db.transactions)[1:])
    service = QueryService()
    cfq = workload.cfq()
    service.execute(workload.db, cfq)
    service.execute(other_db, cfq)
    service.invalidate(other_db)
    still_warm = service.execute(workload.db, cfq)
    assert still_warm.cache_info["source"] == "result-cache"
    cold = service.execute(other_db, cfq)
    assert cold.cache_info["source"] == "cold"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_query_cache_dir_warm_vs_cold(tmp_path, capsys):
    argv = [
        "query",
        "{(S, T) | S.Type = {snacks} & T.Type = {beers} "
        "& max(S.Price) <= min(T.Price)}",
        "--transactions", "200",
        "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold_out = capsys.readouterr().out
    assert "cache: miss (cold run stored)" in cold_out
    assert main(argv) == 0
    warm_out = capsys.readouterr().out
    assert "cache: hit (result-cache, disk tier)" in warm_out
    # Identical answers modulo the cache line.
    strip = lambda text: [
        line for line in text.splitlines() if not line.startswith("cache:")
    ]
    assert strip(cold_out) == strip(warm_out)


def test_cli_query_cache_dir_rejects_checkpointing(tmp_path, capsys):
    code = main([
        "query", "{(S, T) | S.Type = T.Type}",
        "--transactions", "150",
        "--cache-dir", str(tmp_path / "cache"),
        "--checkpoint-dir", str(tmp_path / "ckpt"),
    ])
    assert code == 2
    assert "bypass the result cache" in capsys.readouterr().err


def test_cli_batch_shares_one_skeleton(capsys):
    code = main([
        "batch",
        "{(S, T) | S.Type = {snacks} & T.Type = {beers} "
        "& max(S.Price) <= min(T.Price)}",
        "{(S, T) | S.Type = {snacks} & T.Type = {beers}}",
        "--transactions", "200",
        "--minsup", "0.03",
        "--pairs", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "batch of 2 queries" in out
    assert "1 skeleton(s) mined" in out
    assert out.count("source skeleton") == 2
    assert "cache stats:" in out


def test_cli_batch_churn_verifies_cold_and_writes_delta_report(
    tmp_path, capsys
):
    report_path = tmp_path / "report.json"
    code = main([
        "batch", "{(S, T) | S.Type = T.Type}",
        "--transactions", "200",
        "--minsup", "0.05",
        "--churn", "append:8",
        "--churn", "delete:10",
        "--verify-cold",
        "--report-out", str(report_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "churn[1] append:8" in out
    assert "churn[2] delete:10" in out
    assert out.count("verify-cold:") == 2
    assert "skeleton(s) refreshed" in out

    import json

    doc = json.loads(report_path.read_text())
    from repro.obs.report import RUN_REPORT_VERSION

    assert doc["version"] == RUN_REPORT_VERSION
    steps = doc["delta"]["steps"]
    assert len(steps) == 2
    assert steps[0]["delta"]["added"] == 8
    assert steps[1]["delta"]["removed"] == 10
    assert steps[0]["skeletons_refreshed"] >= 1


def test_cli_batch_rejects_malformed_churn(capsys):
    for spec in ("append", "shuffle:3", "append:0", "delete:x"):
        code = main([
            "batch", "{(S, T) | S.Type = T.Type}",
            "--transactions", "100", "--churn", spec,
        ])
        assert code == 2, spec
        assert "--churn" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Disk sweeps: full-fingerprint matching and out-of-band removal
# ----------------------------------------------------------------------
def test_disk_sweep_never_matches_on_a_truncated_prefix(workload, tmp_path):
    """Regression: sweeps used to match ``dataset_fp[:16]`` — a filename
    sharing only those 16 characters belongs to a *different* dataset
    and must survive an invalidation of this one."""
    service = QueryService(cache_dir=str(tmp_path))
    cfq = workload.cfq()
    service.execute(workload.db, cfq)
    (artifact,) = tmp_path.glob("*.json")

    fp = dataset_fingerprint(workload.db)
    impostor = tmp_path / f"{fp[:16]}{'0' * (len(fp) - 16)}.deadbeef.json"
    impostor.write_text("{}")

    service.invalidate(workload.db)
    assert not artifact.exists()
    assert impostor.exists()


def test_invalidate_tolerates_cache_dir_removed_out_of_band(
    workload, tmp_path
):
    import shutil

    cache_dir = tmp_path / "cache"
    service = QueryService(cache_dir=str(cache_dir))
    cfq = workload.cfq()
    service.execute(workload.db, cfq)
    shutil.rmtree(cache_dir)
    # Regression: this raised FileNotFoundError from os.listdir.
    removed = service.invalidate(workload.db)
    assert removed >= 1  # the memory tiers still swept
    # And the next store recreates the directory instead of failing.
    service.execute(workload.db, cfq)
    assert len(list(cache_dir.glob("*.json"))) == 1


# ----------------------------------------------------------------------
# Skeleton byte accounting
# ----------------------------------------------------------------------
def test_skeleton_bytes_track_getsizeof_of_keys_values_and_slots(workload):
    """Regression: ``nbytes`` ignored the value ints and the dict's own
    hash-table slots, so the skeleton tier's ``max_bytes`` bound held
    several times its configured budget."""
    import sys

    from repro.serve.skeleton import _approx_bytes, build_skeleton

    domain = workload.domains["S"]
    skeleton = build_skeleton(workload.db, domain, min_count=10)
    assert skeleton.supports  # non-degenerate fixture

    def pinned(mapping):
        return sys.getsizeof(mapping) + sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in mapping.items()
        )

    assert _approx_bytes(skeleton.supports) == pinned(skeleton.supports)
    assert skeleton.nbytes == (
        pinned(skeleton.supports) + pinned(skeleton.border)
    )
    # The old formula (tuple cells only) undercounted by at least the
    # dict slots alone.
    assert skeleton.nbytes > sys.getsizeof(skeleton.supports)
