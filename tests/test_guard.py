"""Unit tests for :mod:`repro.runtime.guard`.

The differential/resume behavior lives in ``test_resume_differential``;
partial-result semantics live in ``test_partial_results``.  This file
covers the guard itself: budgets, cooperative checks, signal routing,
the NullGuard contract, and telemetry.
"""

import os
import signal

import pytest

from repro.errors import ExecutionError, RunInterrupted
from repro.runtime.guard import (
    NULL_GUARD,
    GuardTrip,
    NullGuard,
    RunGuard,
    resolve_guard,
)


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"deadline_seconds": -1.0},
        {"max_memory_mb": 0},
        {"max_memory_mb": -5},
        {"max_candidates": 0},
        {"check_every": 0},
    ],
)
def test_invalid_budgets_rejected(kwargs):
    with pytest.raises(ExecutionError):
        RunGuard(**kwargs)


def test_unstarted_guard_has_zero_elapsed():
    guard = RunGuard(deadline_seconds=0.0)
    assert guard.elapsed() == 0.0
    assert not guard.started
    # Deadline is measured from start(): an unstarted guard never trips it.
    guard.check("anywhere")


def test_start_is_idempotent():
    guard = RunGuard().start()
    first = guard._started_at
    guard.start()
    assert guard._started_at == first


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_trips_on_check():
    guard = RunGuard(deadline_seconds=0.0).start()
    with pytest.raises(RunInterrupted) as excinfo:
        guard.check("counting")
    trip = excinfo.value.trip
    assert trip is not None and trip.reason == "deadline"
    assert trip.where == "counting"
    assert guard.trip is trip


def test_tripped_guard_keeps_raising():
    guard = RunGuard(deadline_seconds=0.0).start()
    with pytest.raises(RunInterrupted):
        guard.check()
    # Later checks re-raise even though the deadline condition already
    # fired — a swallowed RunInterrupted must not let work continue.
    with pytest.raises(RunInterrupted):
        guard.check()
    with pytest.raises(RunInterrupted):
        guard.level_completed("S", 3)


def test_tick_only_checks_every_n_units():
    guard = RunGuard(deadline_seconds=0.0, check_every=1000).start()
    # 999 accumulated units: below the threshold, no full check yet.
    guard.tick(999)
    with pytest.raises(RunInterrupted):
        guard.tick(1)  # crosses the threshold -> full check -> deadline


# ----------------------------------------------------------------------
# Memory watermark
# ----------------------------------------------------------------------
def test_memory_watermark_trips_at_level_boundary():
    # Any live Python process is way over a 1 MiB watermark.
    guard = RunGuard(max_memory_mb=1.0).start()
    with pytest.raises(RunInterrupted) as excinfo:
        guard.level_completed("S", 1)
    trip = excinfo.value.trip
    assert trip.reason == "memory"
    assert trip.rss_mb is not None and trip.rss_mb > 1.0


def test_memory_sampling_is_strided_inside_loops():
    guard = RunGuard(max_memory_mb=1.0, memory_sample_every=1000).start()
    # Non-boundary checks below the stride never sample RSS.
    for _ in range(10):
        guard.check("counting")
    with pytest.raises(RunInterrupted):
        guard.check("level")  # boundary checks always sample


def test_generous_watermark_records_peak_without_tripping():
    guard = RunGuard(max_memory_mb=1024 * 1024).start()
    guard.level_completed("S", 1)
    peak = guard.telemetry()["consumed"]["peak_rss_mb"]
    assert peak is not None and peak > 0


# ----------------------------------------------------------------------
# Candidate budget
# ----------------------------------------------------------------------
def test_candidate_budget_trips_before_counting():
    guard = RunGuard(max_candidates=100).start()
    guard.check_candidates(100, "S", 2)  # at the budget: fine
    with pytest.raises(RunInterrupted) as excinfo:
        guard.check_candidates(101, "T", 3)
    trip = excinfo.value.trip
    assert trip.reason == "candidates"
    assert "T" in trip.detail and "101" in trip.detail
    assert trip.where == "candidates T:L3"


# ----------------------------------------------------------------------
# Cancellation and signals
# ----------------------------------------------------------------------
def test_request_cancel_trips_next_check():
    guard = RunGuard().start()
    guard.request_cancel()
    with pytest.raises(RunInterrupted) as excinfo:
        guard.check("loop")
    assert excinfo.value.trip.reason == "cancelled"


def test_first_cancel_reason_wins():
    guard = RunGuard().start()
    guard.request_cancel("sigint", "received SIGINT")
    guard.request_cancel("sigterm", "received SIGTERM")
    with pytest.raises(RunInterrupted) as excinfo:
        guard.check()
    assert excinfo.value.trip.reason == "sigint"


def test_signals_route_sigint_and_restore_handler():
    guard = RunGuard().start()
    before = signal.getsignal(signal.SIGINT)
    with guard.signals():
        assert signal.getsignal(signal.SIGINT) is not before
        os.kill(os.getpid(), signal.SIGINT)
        with pytest.raises(RunInterrupted) as excinfo:
            guard.check("after signal")
        assert excinfo.value.trip.reason == "sigint"
    assert signal.getsignal(signal.SIGINT) is before


def test_level_completed_tracks_deepest_level():
    guard = RunGuard().start()
    guard.level_completed("S", 1)
    guard.level_completed("S", 2)
    guard.level_completed("T", 1)
    assert guard.levels_completed == {"S": 2, "T": 1}
    guard.request_cancel()
    with pytest.raises(RunInterrupted) as excinfo:
        guard.check()
    assert excinfo.value.trip.levels_completed == {"S": 2, "T": 1}


def test_level_completed_is_subclassable_interruption_hook():
    class TripAfterLevels(RunGuard):
        def __init__(self, n):
            super().__init__()
            self.n = n

        def level_completed(self, var, level):
            super().level_completed(var, level)
            self.n -= 1
            if self.n <= 0:
                self.request_cancel("cancelled", "test trip")
                self.check("level")

    guard = TripAfterLevels(2).start()
    guard.level_completed("S", 1)
    with pytest.raises(RunInterrupted):
        guard.level_completed("T", 1)


# ----------------------------------------------------------------------
# Telemetry and GuardTrip rendering
# ----------------------------------------------------------------------
def test_telemetry_shape():
    guard = RunGuard(deadline_seconds=60.0, max_candidates=10_000).start()
    guard.check("x")
    doc = guard.telemetry()
    assert doc["budgets"] == {
        "deadline_seconds": 60.0,
        "max_memory_mb": None,
        "max_candidates": 10_000,
    }
    assert doc["consumed"]["checks"] == 1
    assert doc["consumed"]["elapsed_seconds"] >= 0
    assert doc["trip"] is None


def test_telemetry_includes_trip():
    guard = RunGuard(deadline_seconds=0.0).start()
    with pytest.raises(RunInterrupted):
        guard.check()
    doc = guard.telemetry()
    assert doc["trip"]["reason"] == "deadline"


def test_guard_trip_round_trips_to_dict():
    trip = GuardTrip(
        reason="memory", detail="d", where="w",
        elapsed_seconds=1.23456789, rss_mb=512.0,
        levels_completed={"S": 4},
    )
    doc = trip.as_dict()
    assert doc["reason"] == "memory"
    assert doc["elapsed_seconds"] == pytest.approx(1.234568)
    assert doc["levels_completed"] == {"S": 4}
    assert "memory after 1.23s" in trip.summary()
    assert "S:L4" in trip.summary()


def test_guard_trip_summary_without_levels_or_rss():
    trip = GuardTrip(reason="deadline", detail="d")
    assert "levels completed: none" in trip.summary()
    assert "rss" not in trip.summary()


# ----------------------------------------------------------------------
# NullGuard contract
# ----------------------------------------------------------------------
def test_null_guard_is_inert():
    guard = NULL_GUARD
    assert isinstance(guard, NullGuard)
    assert guard.enabled is False
    assert guard.start() is guard
    guard.request_cancel("sigint")
    guard.check("anywhere")
    guard.tick(10**9)
    guard.check_candidates(10**9, "S", 99)
    guard.level_completed("S", 1)
    with guard.signals():
        pass
    assert guard.trip is None
    assert guard.telemetry() == {}
    assert guard.elapsed() == 0.0


def test_resolve_guard():
    assert resolve_guard(None) is NULL_GUARD
    live = RunGuard()
    assert resolve_guard(live) is live
