"""The package's public surface: everything advertised in __all__ works
and carries documentation."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_public_callables_have_docstrings():
    import inspect

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_module_docstrings_everywhere():
    import importlib
    import pkgutil

    package = repro
    missing = []
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert missing == []


def test_readme_quickstart_executes():
    from repro import CFQ, Domain, ItemCatalog, TransactionDatabase, mine_cfq

    catalog = ItemCatalog(
        {
            "Price": {1: 30, 2: 55, 3: 120, 4: 180},
            "Type": {1: "snacks", 2: "snacks", 3: "beers", 4: "beers"},
        }
    )
    db = TransactionDatabase([(1, 3), (1, 2, 3), (2, 4), (1, 3, 4), (1, 2)])
    item = Domain.items(catalog)
    cfq = CFQ(
        domains={"S": item, "T": item},
        minsup=0.2,
        constraints=[
            "S.Type = {snacks}",
            "T.Type = {beers}",
            "max(S.Price) <= min(T.Price)",
        ],
    )
    result = mine_cfq(db, cfq)
    pairs = result.pairs()
    assert pairs
    for s0, t0 in pairs:
        assert max(catalog.project(s0, "Price")) <= min(
            catalog.project(t0, "Price")
        )
    assert "operation counts" in result.explain()
