"""Data generation: the Quest generator, attribute builders, workloads."""

import numpy as np
import pytest

from repro.datagen.iteminfo import (
    normal_prices,
    segmented_prices,
    typed_catalog_with_overlap,
    uniform_prices,
)
from repro.datagen.quest import QuestParameters, generate_quest
from repro.datagen.workloads import (
    fig8a_workload,
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)
from repro.errors import DataError


# ----------------------------------------------------------------------
# Quest generator
# ----------------------------------------------------------------------
def test_quest_is_deterministic():
    params = QuestParameters(n_transactions=200, n_items=50, seed=42)
    a = generate_quest(params)
    b = generate_quest(params)
    assert a.transactions == b.transactions


def test_quest_seed_changes_output():
    base = QuestParameters(n_transactions=200, n_items=50, seed=1)
    other = QuestParameters(n_transactions=200, n_items=50, seed=2)
    assert generate_quest(base).transactions != generate_quest(other).transactions


def test_quest_respects_counts_and_universe():
    params = QuestParameters(n_transactions=300, n_items=40,
                             avg_transaction_size=6, seed=3)
    db = generate_quest(params)
    assert len(db) == 300
    assert db.item_universe() <= frozenset(range(40))
    sizes = [len(t) for t in db.transactions]
    assert all(s >= 1 for s in sizes)
    # Average size in the right ballpark (Poisson around 6, pattern fill).
    assert 2.0 <= float(np.mean(sizes)) <= 12.0


def test_quest_produces_correlation():
    """Pattern reuse should make some pairs far more frequent than
    independence would allow."""
    params = QuestParameters(n_transactions=800, n_items=100,
                             avg_transaction_size=8, n_patterns=20, seed=5)
    db = generate_quest(params)
    from repro.mining.apriori import apriori

    frequent = apriori(db, 0.02)
    assert frequent.max_level >= 2, "expected correlated pairs"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_transactions": 0},
        {"n_items": 1},
        {"avg_transaction_size": 0},
        {"n_patterns": 0},
        {"correlation": 1.5},
    ],
)
def test_quest_parameter_validation(kwargs):
    with pytest.raises(DataError):
        QuestParameters(**kwargs).validate()


# ----------------------------------------------------------------------
# itemInfo builders
# ----------------------------------------------------------------------
def test_uniform_prices_range_and_determinism():
    items = list(range(50))
    prices = uniform_prices(items, 100, 200, seed=1)
    assert prices == uniform_prices(items, 100, 200, seed=1)
    assert all(100 <= p <= 200 for p in prices.values())
    with pytest.raises(DataError):
        uniform_prices(items, 200, 100)


def test_normal_prices_clipped():
    prices = normal_prices(list(range(200)), 10, 50, seed=2, minimum=1.0)
    assert min(prices.values()) >= 1.0


def test_segmented_prices():
    prices = segmented_prices([(range(5), 0, 10), (range(5, 10), 90, 100)])
    assert all(prices[i] <= 10 for i in range(5))
    assert all(prices[i] >= 90 for i in range(5, 10))


def test_typed_catalog_overlap_is_exact():
    """The fraction of each band's types shared with the other band must
    track the requested overlap."""
    for overlap in (0.0, 40.0, 100.0):
        catalog = typed_catalog_with_overlap(
            n_items=600,
            s_price_range=(400.0, 1000.0),
            t_price_range=(0.0, 600.0),
            overlap_pct=overlap,
            n_types_per_side=10,
            seed=3,
        )
        s_types = {
            catalog.value(i, "Type")
            for i in catalog.items
            if catalog.value(i, "Price") >= 400
        }
        t_types = {
            catalog.value(i, "Type")
            for i in catalog.items
            if catalog.value(i, "Price") <= 600
        }
        shared = {t for t in s_types & t_types if t.startswith("type_shared")}
        assert len(shared) == round(10 * overlap / 100)
        # Exclusive types never leak across bands.
        assert not any(t.startswith("type_t_") for t in s_types)
        assert not any(t.startswith("type_s_") for t in t_types)


def test_typed_catalog_rejects_fully_nested_ranges():
    with pytest.raises(DataError):
        typed_catalog_with_overlap(
            n_items=10,
            s_price_range=(0.0, 1000.0),
            t_price_range=(100.0, 900.0),
            overlap_pct=50.0,
        )


def test_typed_catalog_rejects_bad_percentage():
    with pytest.raises(DataError):
        typed_catalog_with_overlap(
            n_items=10,
            s_price_range=(400.0, 1000.0),
            t_price_range=(0.0, 600.0),
            overlap_pct=150.0,
        )


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def test_fig8a_workload_shape():
    workload = fig8a_workload(50.0, n_items=100, n_transactions=200)
    assert set(workload.domains) == {"S", "T"}
    s_prices = [
        workload.catalog.value(i, "Price") for i in workload.domains["S"].elements
    ]
    t_prices = [
        workload.catalog.value(i, "Price") for i in workload.domains["T"].elements
    ]
    assert min(s_prices) >= 400
    assert max(t_prices) <= 400 + 0.5 * 600 + 1e-9
    cfq = workload.cfq()
    assert len(cfq.twovar) == 1


def test_fig8b_workload_constraints():
    workload = fig8b_workload(40.0, n_items=120, n_transactions=200)
    cfq = workload.cfq()
    assert len(cfq.onevar_for("S")) == 1
    assert len(cfq.onevar_for("T")) == 1
    assert len(cfq.twovar) == 1


def test_jmax_workload_has_deep_s_lattice():
    workload = jmax_workload(600.0, n_transactions=250, core_size=8)
    from repro.mining.apriori import mine_frequent

    projected = [workload.domains["S"].project(t) for t in workload.db.transactions]
    result = mine_frequent(
        projected,
        workload.domains["S"].elements,
        workload.db.min_count(workload.minsup["S"]),
    )
    assert result.max_level >= 6


def test_quickstart_workload_cfq_overrides():
    workload = quickstart_workload(n_transactions=100)
    cfq = workload.cfq(constraints=["S.Type = T.Type"], minsup=0.5)
    assert cfq.minsup_for("S") == 0.5
    assert len(cfq.parsed) == 1
