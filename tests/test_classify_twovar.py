"""Figure 1: classification of 2-var constraints (unit level).

The exhaustive empirical verification lives in the benchmark suite
(``benchmarks/test_fig1_characterization.py``); here the classifier's
table entries and edge cases are checked directly, plus a couple of
cheap empirical spot checks.
"""

import pytest

from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.classify import classify_twovar
from repro.core.empirical import pairwise_anti_monotone_counterexample
from repro.datagen.tiny import tiny_scenario


FIGURE_1 = [
    ("S.A ∩ T.B = ∅", True, True),
    ("S.A ∩ T.B != ∅", False, True),
    ("S.A ⊆ T.B", False, True),
    ("S.A ⊄ T.B", False, True),
    ("S.A = T.B", False, True),
    ("max(S.A) <= min(T.B)", True, True),
    ("min(S.A) <= min(T.B)", False, True),
    ("max(S.A) <= max(T.B)", False, True),
    ("min(S.A) <= max(T.B)", False, True),
    ("sum(S.A) <= max(T.B)", False, False),
    ("sum(S.A) <= sum(T.B)", False, False),
    ("avg(S.A) <= avg(T.B)", False, False),
]


@pytest.mark.parametrize("text, am, qs", FIGURE_1)
def test_figure1_rows(text, am, qs):
    props = classify_twovar(TwoVarView.of(parse_constraint(text)))
    assert props.anti_monotone is am
    assert props.quasi_succinct is qs
    assert props.needs_induction is (not qs)


def test_flipped_orientations_classify_identically():
    a = classify_twovar(TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)")))
    b = classify_twovar(TwoVarView.of(parse_constraint("min(T.B) >= max(S.A)")))
    assert a == b


def test_equality_of_min_max_is_quasi_succinct():
    props = classify_twovar(TwoVarView.of(parse_constraint("min(S.A) = min(T.B)")))
    assert props.quasi_succinct
    assert not props.anti_monotone


def test_count_aggregates_are_not_quasi_succinct():
    props = classify_twovar(TwoVarView.of(parse_constraint("count(S.A) <= max(T.B)")))
    assert not props.quasi_succinct


def test_ne_minmax_not_anti_monotone():
    props = classify_twovar(TwoVarView.of(parse_constraint("max(S.A) != min(T.B)")))
    assert props.quasi_succinct and not props.anti_monotone


def test_anti_monotone_rows_hold_pairwise_on_sample_data():
    scenario = tiny_scenario(3, n_s=4, n_t=4)
    for text in ("S.A ∩ T.B = ∅", "max(S.A) <= min(T.B)"):
        witness = pairwise_anti_monotone_counterexample(
            TwoVarView.of(parse_constraint(text)), scenario.domains
        )
        assert witness is None, (text, witness)


def test_non_anti_monotone_row_refuted_pairwise():
    # min <= min: growing S lowers its min and can repair a violation.
    found = False
    for seed in range(5):
        scenario = tiny_scenario(seed, n_s=4, n_t=4)
        witness = pairwise_anti_monotone_counterexample(
            TwoVarView.of(parse_constraint("min(S.A) <= min(T.B)")), scenario.domains
        )
        if witness is not None:
            found = True
            break
    assert found
