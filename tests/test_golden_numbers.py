"""Golden-number regression tests.

Every workload is seeded and every metric is a deterministic operation
count, so the reproduced numbers are exactly repeatable.  Pinning a few
of them catches silent behavioural drift (a pruning rule quietly
weakening, a counter double-counting) that shape-only assertions would
miss.  If a deliberate algorithm change moves these numbers, update them
alongside the change — the diff is then visible in review.
"""

import pytest

from repro.bench.experiments import fig8a_speedups, fig8b_speedups, jmax_table


def test_fig8a_smoke_golden():
    result = fig8a_speedups(overlaps=(16.6, 83.4), scale="smoke")
    assert result.rows == [
        [16.6, 11.88, 350, 8815],
        [83.4, 1.83, 4710, 8815],
    ]


def test_fig8b_smoke_golden():
    result = fig8b_speedups(overlaps=(20.0, 80.0), scale="smoke")
    assert result.rows == [
        [20.0, 9.58, 58.24, 6.08],
        [80.0, 6.45, 10.35, 1.6],
    ]


def test_jmax_smoke_golden():
    result = jmax_table(means=(400.0, 1000.0), scale="smoke")
    assert result.rows == [
        [400.0, 2.67, 194, 1037, 2205],
        [1000.0, 1.42, 651, 1037, 5205],
    ]


def test_quickstart_op_counts_golden():
    from repro import mine_cfq
    from repro.datagen import quickstart_workload

    workload = quickstart_workload(n_transactions=300)
    result = mine_cfq(workload.db, workload.cfq())
    summary = result.counters.as_dict()
    assert summary["sets_counted"] == 123
    assert summary["constraint_checks_singleton"] == 120
    assert summary["constraint_checks_larger"] == 0
    assert summary["scans"] == 3
