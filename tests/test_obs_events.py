"""Event-journal contract: sequence numbers, bounded window, rotation.

:class:`~repro.obs.events.EventJournal` promises monotonically
increasing sequence numbers across the journal's whole life (drops and
rotations included), a bounded in-memory window with an honest
``dropped`` counter, and size-based file rotation that never loses the
newest generation.
"""

import json

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    NULL_JOURNAL,
    EventJournal,
    read_journal,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        self.now += 0.5
        return self.now


def test_sequence_numbers_are_monotonic_and_gapless():
    journal = EventJournal(clock=FakeClock())
    for __ in range(10):
        journal.record("result_hit", key="k")
    seqs = [event["seq"] for event in journal]
    assert seqs == list(range(1, 11))
    assert journal.snapshot()["seq"] == 10


def test_unknown_kind_is_rejected():
    journal = EventJournal()
    with pytest.raises(ValueError):
        journal.record("made_up_kind")
    assert len(journal) == 0


def test_window_drops_oldest_and_counts_them():
    journal = EventJournal(max_events=5, clock=FakeClock())
    for i in range(12):
        journal.record("result_miss", i=i)
    assert len(journal) == 5
    assert journal.dropped == 7
    # Window keeps the newest events; seq keeps counting through drops.
    assert [event["seq"] for event in journal] == [8, 9, 10, 11, 12]
    assert [event["i"] for event in journal.tail(2)] == [10, 11]


def test_clock_injection_and_field_payload():
    journal = EventJournal(clock=FakeClock())
    journal.record("delta_refresh", domain="abc", seconds=0.25)
    (event,) = list(journal)
    assert event["ts"] == pytest.approx(100.5)
    assert event["domain"] == "abc"
    assert event["seconds"] == 0.25
    assert event["kind"] == "delta_refresh"


def test_counts_tally_by_kind():
    journal = EventJournal()
    for kind in ("result_hit", "result_hit", "result_miss", "guard_trip"):
        journal.record(kind)
    assert journal.counts() == {
        "result_hit": 2, "result_miss": 1, "guard_trip": 1,
    }


def test_file_journal_appends_jsonl(tmp_path):
    path = tmp_path / "journal.jsonl"
    with EventJournal(path=str(path)) as journal:
        journal.record("batch_execute", queries=3)
        journal.record("service_clear")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["kind"] == "batch_execute" and first["queries"] == 3
    assert read_journal(str(path)) == [json.loads(l) for l in lines]


def test_rotation_shifts_generations_and_keeps_newest(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = EventJournal(
        path=str(path), max_bytes=600, max_files=3, clock=FakeClock()
    )
    for i in range(60):
        journal.record("result_hit", key=f"key-{i:04d}")
    journal.close()

    assert journal.rotations >= 2
    generations = sorted(p.name for p in tmp_path.iterdir())
    assert "journal.jsonl" in generations
    assert "journal.jsonl.1" in generations
    # Live file plus at most max_files rotated generations.
    assert len(generations) <= journal.max_files + 1

    # Generations hold disjoint, ordered seq ranges: oldest kept file
    # first, live file last (possibly empty right after a rotation).
    chains = [
        [e["seq"] for e in read_journal(str(path) + suffix)]
        for suffix in (".3", ".2", ".1", "")
        if (tmp_path / ("journal.jsonl" + suffix)).exists()
    ]
    flat = [seq for chain in chains for seq in chain]
    assert flat == sorted(flat)
    assert flat[-1] == 60  # the newest event is never lost to rotation


def test_snapshot_shape():
    journal = EventJournal(max_events=4)
    for __ in range(6):
        journal.record("skeleton_hit")
    snap = journal.snapshot()
    assert snap["seq"] == 6
    assert snap["dropped"] == 2
    assert snap["rotations"] == 0
    # counts() is window-scoped: the 2 dropped events are visible only
    # through seq/dropped, not the tallies.
    assert snap["counts"] == {"skeleton_hit": 4}
    assert len(snap["events"]) == 4


def test_event_kind_vocabulary_is_frozen():
    assert isinstance(EVENT_KINDS, frozenset)
    for kind in ("result_hit", "result_evict", "skeleton_store",
                 "delta_refresh", "guard_trip", "batch_execute"):
        assert kind in EVENT_KINDS


def test_null_journal_is_inert(tmp_path):
    NULL_JOURNAL.record("result_hit", key="x")
    NULL_JOURNAL.record("not_even_a_kind")  # no validation, no effect
    assert len(NULL_JOURNAL) == 0
    assert list(NULL_JOURNAL) == []
    assert NULL_JOURNAL.counts() == {}
    snap = NULL_JOURNAL.snapshot()
    assert snap["seq"] == 0 and snap["events"] == []
    NULL_JOURNAL.close()
