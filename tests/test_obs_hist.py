"""Quantile-histogram guarantees: bounded relative error and mergeability.

The log-bucketed :class:`~repro.obs.hist.QuantileHistogram` promises
every returned quantile is within ``relative_error`` of the exact
sample quantile (same nearest-rank definition, ``exact_quantile``).
These tests prove the bound on random and adversarial distributions,
and that merging is exact (bucket counts add), associative and
commutative — the property the shard-registry fold relies on.
"""

import math
import random

import pytest

from repro.obs.hist import (
    DEFAULT_RELATIVE_ERROR,
    QuantileHistogram,
    exact_quantile,
)

QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def _assert_within_bound(hist, values, alpha):
    for q in QUANTILES:
        exact = exact_quantile(values, q)
        estimate = hist.quantile(q)
        if exact == 0.0:
            assert estimate == pytest.approx(0.0, abs=1e-12)
        else:
            relative = abs(estimate - exact) / abs(exact)
            assert relative <= alpha + 1e-9, (
                f"q={q}: estimate {estimate} vs exact {exact} "
                f"(relative {relative:.4f} > alpha {alpha})"
            )


def _distributions(rng):
    yield "uniform", [rng.uniform(0.001, 10.0) for __ in range(2000)]
    yield "lognormal", [rng.lognormvariate(0.0, 2.0) for __ in range(2000)]
    yield "exponential", [rng.expovariate(3.0) for __ in range(2000)]
    # Adversarial: many decades of magnitude in one stream.
    yield "wide-decades", [10.0 ** rng.uniform(-9, 9) for __ in range(2000)]
    # Adversarial: heavy ties at one value plus a far tail.
    yield "ties-plus-tail", [0.5] * 1500 + [1e6] * 500
    # Adversarial: signed values (latencies never are, but the histogram
    # is a general metric type) plus exact zeros.
    yield "signed", (
        [-(10.0 ** rng.uniform(-3, 3)) for __ in range(600)]
        + [0.0] * 100
        + [10.0 ** rng.uniform(-3, 3) for __ in range(600)]
    )
    yield "tiny", [3.0]
    yield "two", [1.0, 100.0]


def test_relative_error_bound_on_random_and_adversarial_distributions():
    rng = random.Random(7)
    for name, values in _distributions(rng):
        hist = QuantileHistogram()
        for value in values:
            hist.observe(value)
        assert hist.count == len(values), name
        _assert_within_bound(hist, values, hist.relative_error)


def test_relative_error_bound_holds_at_coarser_accuracy():
    rng = random.Random(11)
    values = [rng.lognormvariate(0.0, 3.0) for __ in range(3000)]
    for alpha in (0.001, 0.05, 0.10):
        hist = QuantileHistogram(relative_error=alpha)
        for value in values:
            hist.observe(value)
        _assert_within_bound(hist, values, alpha)


def test_extreme_quantiles_are_exact_min_and_max():
    hist = QuantileHistogram()
    values = [0.003, 1.7, 42.0, 0.5]
    for value in values:
        hist.observe(value)
    assert hist.quantile(0.0) == min(values)
    assert hist.quantile(1.0) == max(values)
    assert hist.min == min(values)
    assert hist.max == max(values)


def test_merge_is_exact_associative_and_commutative():
    rng = random.Random(13)
    streams = [
        [rng.lognormvariate(0.0, 2.0) for __ in range(500)]
        for __ in range(3)
    ]
    parts = []
    for stream in streams:
        hist = QuantileHistogram()
        for value in stream:
            hist.observe(value)
        parts.append(hist)
    a, b, c = parts

    def structure(hist):
        """Everything but the float running sum, whose low bits depend
        on addition order (bucket counts — the quantile inputs — must
        match *exactly*)."""
        state = hist.to_state()
        return {k: v for k, v in state.items() if k != "sum"}

    # ((a+b)+c) == (a+(b+c)) == (c+b)+a — identical bucket state, not
    # just close quantiles.
    left = a.copy()
    left.merge(b)
    left.merge(c)
    right = b.copy()
    right.merge(c)
    right_total = a.copy()
    right_total.merge(right)
    reversed_ = c.copy()
    reversed_.merge(b)
    reversed_.merge(a)
    assert structure(left) == structure(right_total) == structure(reversed_)

    # The merged histogram equals one built from the concatenation.
    combined = QuantileHistogram()
    for stream in streams:
        for value in stream:
            combined.observe(value)
    assert structure(left) == structure(combined)
    for q in QUANTILES:
        assert left.quantile(q) == combined.quantile(q)
    assert left.count == sum(len(s) for s in streams)
    assert left.total == pytest.approx(sum(sum(s) for s in streams))


def test_merge_preserves_error_bound():
    rng = random.Random(17)
    all_values = []
    merged = QuantileHistogram()
    for __ in range(4):
        shard_values = [10.0 ** rng.uniform(-6, 6) for __ in range(400)]
        shard = QuantileHistogram()
        for value in shard_values:
            shard.observe(value)
        merged.merge(shard)
        all_values.extend(shard_values)
    _assert_within_bound(merged, all_values, merged.relative_error)


def test_merge_rejects_mismatched_accuracy():
    coarse = QuantileHistogram(relative_error=0.05)
    fine = QuantileHistogram(relative_error=0.01)
    with pytest.raises(ValueError):
        fine.merge(coarse)


def test_state_round_trip_is_lossless():
    rng = random.Random(19)
    hist = QuantileHistogram()
    for __ in range(300):
        hist.observe(rng.choice([-1.0, 0.0, 1.0]) * rng.expovariate(1.0))
    restored = QuantileHistogram.from_state(hist.to_state())
    assert restored == hist
    for q in QUANTILES:
        assert restored.quantile(q) == hist.quantile(q)


def test_empty_histogram_is_safe():
    hist = QuantileHistogram()
    assert hist.count == 0
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    document = hist.as_dict()
    assert document["count"] == 0
    assert document["min"] == 0.0 and document["max"] == 0.0
    restored = QuantileHistogram.from_state(hist.to_state())
    assert restored == hist


def test_bucket_count_stays_logarithmic():
    """12 decades of magnitude cost ~115 buckets/decade at 1% accuracy —
    the whole point of log bucketing over exact storage."""
    hist = QuantileHistogram()
    rng = random.Random(23)
    for __ in range(50_000):
        hist.observe(10.0 ** rng.uniform(-6, 6))
    n_buckets = sum(1 for __ in hist.buckets())
    per_decade = math.log(10.0) / math.log(hist._gamma)
    assert n_buckets <= 12 * per_decade + 2
    assert n_buckets < 1500  # vs 50k exact samples


def test_default_accuracy_is_one_percent():
    assert DEFAULT_RELATIVE_ERROR == 0.01
    assert QuantileHistogram().relative_error == 0.01
