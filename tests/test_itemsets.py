"""Itemset helper utilities."""

from repro.itemsets import (
    all_nonempty_subsets,
    canonical,
    flatten,
    max_level,
    proper_subsets,
    ranked,
    subsets_of_size,
)


def test_canonical_sorts():
    assert canonical({3, 1, 2}) == (1, 2, 3)
    assert canonical([]) == ()


def test_ranked_orders_by_rank():
    rank = {10: 2, 20: 0, 30: 1}
    assert ranked((10, 20, 30), rank) == (20, 30, 10)


def test_subsets_of_size():
    assert list(subsets_of_size((1, 2, 3), 2)) == [(1, 2), (1, 3), (2, 3)]


def test_proper_subsets():
    assert list(proper_subsets((1, 2, 3))) == [(1, 2), (1, 3), (2, 3)]


def test_all_nonempty_subsets_ordered_by_size():
    subsets = list(all_nonempty_subsets((2, 1)))
    assert subsets == [(1,), (2,), (1, 2)]


def test_max_level_and_flatten():
    by_level = {1: {(1,): 5}, 2: {(1, 2): 3}, 3: {}}
    assert max_level(by_level) == 2
    assert flatten(by_level) == {(1,): 5, (1, 2): 3}
    assert max_level({}) == 0


def test_mining_reexport_is_same_objects():
    import repro.itemsets as top
    import repro.mining.itemsets as nested

    assert nested.canonical is top.canonical
    assert nested.Itemset is top.Itemset
