"""Property tests for the sharded-counting merge algebra.

Two families of laws keep the :class:`ParallelBackend` honest:

* **merge algebra** — summing per-shard support maps is associative and
  commutative, so shard order, grouping, and fan-out never change the
  answer;
* **metering parity** — for *any* split of the transaction list, the
  merged :class:`OpCounters` totals equal the serial run's totals
  (subset tests sum per transaction; the candidate-set ledger is
  recorded once, not once per shard).
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.stats import OpCounters, merge_shard_counters
from repro.mining.backends import (
    count_shard,
    merge_shard_supports,
    shard_transactions,
)
from repro.mining.counting import count_candidates


@st.composite
def database_and_candidates(draw):
    raw = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=18),
                     min_size=0, max_size=7),
            min_size=1,
            max_size=28,
        )
    )
    transactions = [tuple(sorted(set(t))) for t in raw]
    universe = sorted({i for t in transactions for i in t})
    k = draw(st.integers(min_value=2, max_value=3))
    candidates = list(combinations(universe, k))[:50]
    return transactions, candidates, k


@settings(max_examples=50, deadline=None)
@given(data=database_and_candidates(), n_shards=st.integers(1, 6))
def test_any_shard_split_reproduces_serial_supports(data, n_shards):
    transactions, candidates, k = data
    if not candidates:
        return
    serial = count_candidates(transactions, candidates, k)
    shards = shard_transactions(transactions, n_shards)
    assert sum(len(s) for s in shards) == len(transactions)
    assert [t for s in shards for t in s] == list(transactions)
    per_shard = [count_shard(s, candidates, k, "S")[0] for s in shards]
    merged = merge_shard_supports(per_shard, candidates)
    assert merged == serial
    assert list(merged) == list(serial)


@settings(max_examples=50, deadline=None)
@given(
    data=database_and_candidates(),
    n_shards=st.integers(2, 5),
    seed=st.randoms(use_true_random=False),
)
def test_merge_is_commutative_and_associative(data, n_shards, seed):
    transactions, candidates, k = data
    if not candidates:
        return
    per_shard = [
        count_shard(shard, candidates, k, "S")[0]
        for shard in shard_transactions(transactions, n_shards)
    ]
    reference = merge_shard_supports(per_shard, candidates)

    # Commutativity: any shard permutation merges to the same map.
    shuffled = list(per_shard)
    seed.shuffle(shuffled)
    assert merge_shard_supports(shuffled, candidates) == reference

    # Associativity: merging a pre-merged prefix with the remainder is a
    # regrouping of the same sum, e.g. (a + b) + (c + d) == a + b + c + d.
    split = len(per_shard) // 2
    left = merge_shard_supports(per_shard[:split], candidates)
    right = merge_shard_supports(per_shard[split:], candidates)
    assert merge_shard_supports([left, right], candidates) == reference


@settings(max_examples=50, deadline=None)
@given(data=database_and_candidates(), n_shards=st.integers(1, 6))
def test_merged_counters_equal_serial_totals(data, n_shards):
    transactions, candidates, k = data
    if not candidates:
        return
    serial_counters = OpCounters()
    count_candidates(transactions, candidates, k, serial_counters, "S")
    shard_counters = [
        count_shard(shard, candidates, k, "S")[1]
        for shard in shard_transactions(transactions, n_shards)
    ]
    merged = merge_shard_counters(shard_counters)
    assert merged.subset_tests == serial_counters.subset_tests
    assert merged.support_counted == serial_counters.support_counted
    assert merged.total_counted == serial_counters.total_counted
    # A naive sum would overstate the ledger by the shard fan-out.
    if n_shards > 1 and serial_counters.total_counted:
        naive = sum(c.total_counted for c in shard_counters)
        assert naive == n_shards * serial_counters.total_counted
        assert merged.total_counted < naive


def test_merge_shard_counters_rejects_mismatched_ledgers():
    a, b = OpCounters(), OpCounters()
    a.record_counted("S", 2, 10)
    b.record_counted("S", 2, 7)
    try:
        merge_shard_counters([a, b])
    except ValueError:
        pass
    else:  # pragma: no cover - defends the merge precondition
        raise AssertionError("mismatched shard ledgers must be rejected")


def test_merge_shard_counters_empty():
    merged = merge_shard_counters([])
    assert merged.subset_tests == 0
    assert merged.support_counted == {}
