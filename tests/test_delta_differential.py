"""Differential proof of incremental maintenance under dataset churn.

The claim (``docs/serving.md``): after ``db.append``/``db.delete`` plus
``QueryService.apply_delta``, every answer served over the mutated
dataset is **bit-identical** to cold-mining that dataset from scratch —
the same frequent sets with the same supports in the same order, the
same pairs, the same bound histories, and the same answer-bearing
counters.  Equivalently: a skeleton refreshed through any chain of
deltas is mapping-identical (``supports`` *and* negative ``border``) to
one cold-built from the final transactions.

Proven here on the same three workload families as
``test_serve_differential.py``, plus randomized churn sequences; this
suite runs in the fast lane (no ``slow`` marker) because deltas are
small and refreshes are cheap — that cheapness is itself the tentpole
claim, benchmarked in ``benchmarks/test_churn.py``.
"""

import random

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import (
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)
from repro.errors import ExecutionError
from repro.serve import (
    QueryService,
    build_skeleton,
    refresh_skeleton,
    scaled_min_count,
)

from tests.test_serve_differential import ANSWER_COUNTERS, WORKLOADS, _answers


def _churn_transactions(db, n, rng):
    universe = sorted(db.item_universe())
    lengths = [len(t) for t in db.transactions if t] or [1]
    return [
        tuple(sorted(rng.sample(universe,
                                min(rng.choice(lengths), len(universe)))))
        for _ in range(n)
    ]


def _assert_served_equals_cold(item, db, name):
    """The suite's core assertion: a skeleton-served answer over the
    mutated dataset vs a cold optimizer run on the same dataset."""
    assert item.source == "skeleton", (name, item.source)
    cold = CFQOptimizer(item.cfq).execute(db)
    assert _answers(item.result) == _answers(cold), name
    warm_counts = item.result.counters.as_dict()
    cold_counts = cold.counters.as_dict()
    for field in ANSWER_COUNTERS:
        assert warm_counts[field] == cold_counts[field], (name, field)
    assert (
        item.result.counters.snapshot()["support_counted"]
        == cold.counters.snapshot()["support_counted"]
    ), name


# ----------------------------------------------------------------------
# Service-level: append / delete / chained churn, per workload family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_serve_after_append_is_bit_identical_to_cold(name):
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    service = QueryService()
    service.execute_batch(workload.db, [cfq])  # warm the skeleton tier

    rng = random.Random(11)
    db, delta = workload.db.append(
        _churn_transactions(workload.db, 10, rng)
    )
    report = service.apply_delta(db, delta)
    assert report.skeletons_refreshed >= 1, name
    assert report.skeletons_dropped == 0, name

    (item,) = service.execute_batch(db, [cfq]).items
    _assert_served_equals_cold(item, db, name)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_serve_after_delete_is_bit_identical_to_cold(name):
    workload = WORKLOADS[name]()
    cfq = workload.cfq()
    service = QueryService()
    service.execute_batch(workload.db, [cfq])

    rng = random.Random(13)
    tids = rng.sample(range(len(workload.db)), 10)
    db, delta = workload.db.delete(tids)
    report = service.apply_delta(db, delta)
    assert report.skeletons_refreshed >= 1, name

    (item,) = service.execute_batch(db, [cfq]).items
    _assert_served_equals_cold(item, db, name)


@pytest.mark.parametrize("seed", [3, 17])
def test_randomized_churn_sequence_stays_bit_identical(seed):
    """Every step of a random append/delete walk serves answers
    identical to cold runs — refreshes chain without drift."""
    workload = quickstart_workload(n_transactions=250)
    cfq = workload.cfq()
    service = QueryService()
    db = workload.db
    service.execute_batch(db, [cfq])

    rng = random.Random(seed)
    for step in range(4):
        if rng.random() < 0.5 and len(db) > 30:
            db, delta = db.delete(
                rng.sample(range(len(db)), rng.randint(1, 12))
            )
        else:
            db, delta = db.append(
                _churn_transactions(db, rng.randint(1, 12), rng)
            )
        report = service.apply_delta(db, delta)
        assert report.skeletons_refreshed >= 1, (seed, step)
        (item,) = service.execute_batch(db, [cfq]).items
        _assert_served_equals_cold(item, db, (seed, step))


def test_apply_delta_invalidates_base_results_and_rejects_mismatch():
    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    service = QueryService()
    service.execute(workload.db, cfq)  # cold -> result tier under base fp

    db, delta = workload.db.append([[1, 2, 3]])
    report = service.apply_delta(db, delta)
    assert report.results_invalidated >= 1
    # The base result is gone: same query over the base dataset is cold.
    assert service.execute(workload.db, cfq).cache_info["source"] == "cold"

    # A delta that does not lead to the presented database is an error —
    # apply_delta must never re-key caches onto the wrong content.
    other_db, _ = workload.db.append([[4, 5, 6]])
    with pytest.raises(ExecutionError):
        service.apply_delta(other_db, delta)


# ----------------------------------------------------------------------
# Skeleton-level: refresh == cold build, mapping-identical
# ----------------------------------------------------------------------
def _skeleton_fixture(n=250, min_count=15):
    workload = quickstart_workload(n_transactions=n)
    domain = workload.domains["S"]
    skeleton = build_skeleton(workload.db, domain, min_count)
    return workload.db, domain, skeleton


def test_refresh_equals_cold_build_including_border():
    db, domain, skeleton = _skeleton_fixture()
    rng = random.Random(5)
    db2, delta = db.append(_churn_transactions(db, 12, rng))

    refreshed, stats = refresh_skeleton(skeleton, db2, delta)
    cold = build_skeleton(db2, domain, refreshed.min_count)
    assert refreshed.supports == cold.supports
    assert refreshed.border == cold.border
    assert refreshed.dataset == delta.new_digest
    assert refreshed.n_transactions == len(db2)
    assert stats.probed >= 0 and stats.entries_after == (
        len(cold.supports) + len(cold.border)
    )


def test_refresh_chains_across_mixed_churn():
    db, domain, skeleton = _skeleton_fixture()
    rng = random.Random(23)
    for _ in range(3):
        if rng.random() < 0.5:
            db, delta = db.delete(rng.sample(range(len(db)), 8))
        else:
            db, delta = db.append(_churn_transactions(db, 8, rng))
        skeleton, _ = refresh_skeleton(skeleton, db, delta)
    cold = build_skeleton(db, domain, skeleton.min_count)
    assert skeleton.supports == cold.supports
    assert skeleton.border == cold.border


def test_refresh_with_explicit_threshold_promotes_across_border():
    """Dropping the threshold during a refresh promotes border itemsets
    (and probes their never-counted supersets) — still cold-identical."""
    db, domain, skeleton = _skeleton_fixture(min_count=20)
    db2, delta = db.append([[1, 2, 3]])
    refreshed, stats = refresh_skeleton(skeleton, db2, delta, min_count=14)
    cold = build_skeleton(db2, domain, 14)
    assert refreshed.supports == cold.supports
    assert refreshed.border == cold.border
    assert stats.promoted > 0
    assert stats.probed > 0 and stats.probe_scans >= 1


def test_refresh_rejects_a_stale_base():
    """A skeleton can only consume a delta that starts from the dataset
    it was mined over — anything else must refuse, not serve stale."""
    db, domain, skeleton = _skeleton_fixture()
    db2, _ = db.append([[1, 2]])
    db3, later_delta = db2.append([[3, 4]])
    with pytest.raises(ExecutionError):
        refresh_skeleton(skeleton, db3, later_delta)


def test_empty_delta_refresh_is_pure_rekeying():
    db, domain, skeleton = _skeleton_fixture()
    db2, delta = db.append([])
    refreshed, stats = refresh_skeleton(skeleton, db2, delta)
    assert refreshed.supports == skeleton.supports
    assert refreshed.border == skeleton.border
    assert stats.updated == 0 and stats.probed == 0
    assert stats.l1_crossings == 0


# ----------------------------------------------------------------------
# Threshold rescaling: the serving-guarantee invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n,n2", [
    (15, 300, 312), (15, 300, 285), (1, 100, 1000), (30, 300, 150),
    (7, 100, 100), (2, 10, 10000),
])
def test_scaled_min_count_preserves_every_served_minsup(m, n, n2):
    """Every relative minsup the old skeleton served (ceil(minsup*n) >= m)
    is still served by the rescaled threshold (ceil(minsup*n2) >= m')."""
    import math

    m2 = scaled_min_count(m, n, n2)
    assert m2 >= 1
    for numerator in range(1, 4 * n + 1):
        minsup = numerator / (4 * n)
        if math.ceil(minsup * n) >= m:
            assert math.ceil(minsup * n2) >= m2, (minsup, m2)


@pytest.mark.parametrize("m,n,n2", [
    (15, 300, 312), (15, 300, 285), (30, 300, 150), (7, 100, 100),
])
def test_scaled_min_count_is_maximal(m, n, n2):
    """One notch tighter would drop a minsup the old skeleton served —
    the rescaling is not merely sound but as strong as possible.  The
    witness is the smallest minsup the old skeleton served, expressed
    exactly: minsup0 = ((m-1)*n2 + 1) / (n*n2)."""
    import math
    from fractions import Fraction

    m2 = scaled_min_count(m, n, n2)
    minsup0 = Fraction((m - 1) * n2 + 1, n * n2)
    assert math.ceil(minsup0 * n) == m       # old skeleton served it...
    assert math.ceil(minsup0 * n2) == m2     # ...and m2+1 would refuse it
