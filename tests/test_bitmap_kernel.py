"""Property suite for the bitmap counting kernel.

Hypothesis-driven proofs of the :mod:`repro.mining.bitmap` invariants:

* **Pack round-trip** — both matrix representations (numpy uint64 rows
  and Python big-int masks) reproduce every item's exact TID set, and
  the tail words of a ragged ``N`` (not a multiple of 64) carry no
  phantom bits above ``N``.
* **Set-oracle equality** — ``count_with_bitmap`` matches an
  independent subset-test oracle on arbitrary candidate batches,
  including ragged batches, absent/negative/huge item ids, and the
  empty candidate (defined as support 0 by both kernels; the levelwise
  engines never emit one).
* **Kernel cross-checks** — the numpy and big-int kernels agree dict
  for dict (insertion order included); the level-2 Gram/BLAS kernel
  agrees with the chunked gather kernel; chunk size never changes the
  answer.
* **Shard additivity** — per-candidate supports and the bit-probe
  meter both sum exactly over any partition of the transactions (the
  invariant that makes ``parallel:N:bitmap`` bit-identical to serial
  bitmap; the differential harness proves the end-to-end form).
* **Degenerate datasets** survive the kernel, the backend, and the
  guard / checkpoint-resume run paths with answers identical to the
  hybrid reference.
"""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import HealthCheck, assume, example, given, settings
from hypothesis import strategies as st

from repro.db.stats import OpCounters
from repro.mining.apriori import mine_frequent
from repro.mining.backends import HybridBackend
from repro.db.transactions import TransactionDatabase
from repro.errors import ExecutionError
from repro.mining.bitmap import (
    HAVE_NUMPY,
    BitmapBackend,
    bitmap_probe_cost,
    build_bitmap,
    count_with_bitmap,
    update_bitmap,
)
from repro.runtime.guard import RunGuard

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def representations():
    """The matrix kinds buildable in this environment."""
    return (True, False) if HAVE_NUMPY else (False,)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def _sorted_tuple(values):
    return tuple(sorted(values))


TRANSACTION = st.lists(
    st.integers(min_value=1, max_value=12), unique=True, max_size=6
).map(_sorted_tuple)

TRANSACTIONS = st.lists(TRANSACTION, max_size=80)

#: Candidates range over ids outside the universe too — absent items,
#: negative ids, and id 0 must all count as support 0.
CANDIDATE = st.lists(
    st.integers(min_value=-3, max_value=16), unique=True, max_size=4
).map(_sorted_tuple)

CANDIDATES = st.lists(CANDIDATE, unique=True, max_size=25)


def set_oracle(transactions, candidates):
    """Independent subset-test oracle (the kernels define the empty
    candidate's support as 0; levelwise mining never emits one)."""
    return {
        c: (
            sum(1 for t in transactions if set(c) <= set(t)) if c else 0
        )
        for c in candidates
    }


# ----------------------------------------------------------------------
# Pack / popcount round-trips and ragged tail words
# ----------------------------------------------------------------------
def _tids_of(bitmap, item):
    """Recover an item's TID set straight from the packed representation."""
    n = bitmap.n_transactions
    if bitmap.kind == "int":
        mask = bitmap.masks.get(item, 0)
        return {tid for tid in range(n) if (mask >> tid) & 1}
    row = bitmap.matrix[bitmap.item_index.get(item, 0)]
    return {
        tid for tid in range(n) if (int(row[tid >> 6]) >> (tid & 63)) & 1
    }


@SETTINGS
@given(transactions=TRANSACTIONS)
def test_pack_round_trip(transactions):
    truth = {}
    for tid, transaction in enumerate(transactions):
        for item in transaction:
            truth.setdefault(item, set()).add(tid)
    for use_numpy in representations():
        bitmap = build_bitmap(transactions, use_numpy=use_numpy)
        assert bitmap.n_transactions == len(transactions)
        assert bitmap.n_words == (len(transactions) + 63) >> 6
        for item, tids in truth.items():
            assert _tids_of(bitmap, item) == tids, (use_numpy, item)
        # An id no transaction contains unpacks to the empty TID set.
        assert _tids_of(bitmap, 10**6) == set()


@SETTINGS
@given(transactions=TRANSACTIONS)
@example(transactions=[(1,)] * 63)
@example(transactions=[(1,)] * 64)
@example(transactions=[(1, 2)] * 65)
@example(transactions=[(1,)] * 130)
def test_tail_words_carry_no_phantom_bits(transactions):
    """Bits at positions >= N must be zero in every representation —
    otherwise popcounts would invent transactions whenever N % 64 != 0."""
    n = len(transactions)
    for use_numpy in representations():
        bitmap = build_bitmap(transactions, use_numpy=use_numpy)
        if bitmap.kind == "int":
            for mask in bitmap.masks.values():
                assert mask >> n == 0
        else:
            tail_bits = n & 63
            if tail_bits:
                for word in bitmap.matrix[:, -1]:
                    assert int(word) >> tail_bits == 0
        # Singleton popcounts equal true item frequencies even at the tail.
        universe = sorted({i for t in transactions for i in t})
        singles = [(item,) for item in universe]
        support = count_with_bitmap(bitmap, singles)
        for item in universe:
            assert support[(item,)] == sum(
                1 for t in transactions if item in t
            )


# ----------------------------------------------------------------------
# Intersection counts vs the set oracle; numpy-vs-int cross-check
# ----------------------------------------------------------------------
@SETTINGS
@given(transactions=TRANSACTIONS, candidates=CANDIDATES)
@example(transactions=[(1, 2, 3)] * 70, candidates=[(), (1,), (1, 2, 3)])
def test_counts_match_set_oracle_in_both_representations(
    transactions, candidates
):
    oracle = set_oracle(transactions, candidates)
    results = {}
    for use_numpy in representations():
        bitmap = build_bitmap(transactions, use_numpy=use_numpy)
        counters = OpCounters()
        support = count_with_bitmap(bitmap, candidates, counters, "S", 2)
        assert support == oracle, use_numpy
        assert list(support) == list(candidates), use_numpy
        assert counters.subset_tests == bitmap_probe_cost(
            candidates, len(transactions)
        ), use_numpy
        results[use_numpy] = support
    if len(results) == 2:
        assert list(results[True].items()) == list(results[False].items())


@needs_numpy
@SETTINGS
@given(transactions=TRANSACTIONS, candidates=CANDIDATES)
def test_chunk_size_never_changes_the_answer(transactions, candidates):
    """The gather kernel's chunking is a memory knob, not a semantic
    one: chunk sizes 1, 3, and 'whole batch' agree bit for bit."""
    bitmap = build_bitmap(transactions, use_numpy=True)
    reference = count_with_bitmap(bitmap, candidates, chunk_size=10**6)
    for chunk_size in (1, 3):
        assert (
            count_with_bitmap(bitmap, candidates, chunk_size=chunk_size)
            == reference
        )


@needs_numpy
@SETTINGS
@given(transactions=st.lists(TRANSACTION, min_size=1, max_size=80))
def test_gemm_kernel_matches_gather_kernel(transactions):
    """The level-2 Gram/BLAS kernel and the chunked gather kernel count
    the same batch identically.  The batch is padded with repeats until
    it clears ``_gemm_worthwhile``'s density bound, so the GEMM path is
    genuinely exercised (asserted, not assumed)."""
    import numpy as np

    from repro.mining.bitmap import (
        _count_gather,
        _translate_rows,
        _try_pairs_gemm,
    )

    universe = sorted({i for t in transactions for i in t})
    assume(len(universe) >= 2)
    pairs = list(combinations(universe, 2))
    repeats = (4 * (len(universe) + 1)) // len(pairs) + 1
    candidates = pairs * repeats
    bitmap = build_bitmap(transactions, use_numpy=True)
    flat = np.asarray(
        [item for candidate in candidates for item in candidate],
        dtype=np.int64,
    )
    rows = _translate_rows(bitmap, flat)
    gemm = _try_pairs_gemm(bitmap, rows, len(candidates))
    assert gemm is not None  # the padded batch must take the GEMM path
    gather = _count_gather(bitmap.matrix, rows.reshape(-1, 2), 7)
    assert gemm.tolist() == gather.tolist()
    oracle = set_oracle(transactions, pairs)
    for candidate, count in zip(candidates, gemm.tolist()):
        assert count == oracle[candidate]


@needs_numpy
def test_huge_item_ids_disable_the_lookup_array_not_correctness():
    """An item id beyond ``_MAX_LOOKUP_ITEM`` forces the unique+dict
    row translation; answers are unchanged."""
    from repro.mining.bitmap import _MAX_LOOKUP_ITEM, _row_lookup

    huge = _MAX_LOOKUP_ITEM + 5
    transactions = [(1, huge), (1,), (huge,)] * 3
    candidates = [(1,), (huge,), (1, huge), (-2, 1), (2,)]
    bitmap = build_bitmap(transactions, use_numpy=True)
    assert _row_lookup(bitmap) is None  # dense translation refused
    support = count_with_bitmap(bitmap, candidates)
    assert support == set_oracle(transactions, candidates)


# ----------------------------------------------------------------------
# Shard additivity: supports and metering sum over any partition
# ----------------------------------------------------------------------
@SETTINGS
@given(
    transactions=st.lists(TRANSACTION, min_size=2, max_size=80),
    candidates=CANDIDATES,
    data=st.data(),
)
def test_supports_and_probes_additive_over_any_partition(
    transactions, candidates, data
):
    n = len(transactions)
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n),
                min_size=1,
                max_size=3,
            ),
            label="cuts",
        )
    )
    bounds = [0] + cuts + [n]
    shards = [
        transactions[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]

    def one_pass(txns):
        counters = OpCounters()
        support = count_with_bitmap(
            build_bitmap(txns), candidates, counters, "S", 2
        )
        return support, counters.subset_tests

    whole, whole_probes = one_pass(transactions)
    shard_results = [one_pass(shard) for shard in shards]
    assert sum(probes for __, probes in shard_results) == whole_probes
    for candidate in candidates:
        assert (
            sum(support[candidate] for support, __ in shard_results)
            == whole[candidate]
        )


# ----------------------------------------------------------------------
# Empty and degenerate datasets: kernel and backend level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_numpy", representations())
def test_empty_database_counts_zero(use_numpy):
    bitmap = build_bitmap([], use_numpy=use_numpy)
    assert bitmap.n_transactions == 0
    assert bitmap.n_words == 0
    counters = OpCounters()
    support = count_with_bitmap(bitmap, [(1,), (1, 2)], counters, "S", 2)
    assert support == {(1,): 0, (1, 2): 0}
    assert counters.subset_tests == 0  # probes * N with N == 0


@pytest.mark.parametrize("use_numpy", representations())
def test_all_empty_transactions_count_zero(use_numpy):
    transactions = [()] * 70  # ragged tail, no items at all
    bitmap = build_bitmap(transactions, use_numpy=use_numpy)
    support = count_with_bitmap(bitmap, [(1,), (2, 3)])
    assert support == {(1,): 0, (2, 3): 0}


def test_backend_empty_candidate_batch_is_a_no_op():
    backend = BitmapBackend()
    counters = OpCounters()
    assert backend.count([(1, 2)], [], 2, counters, "S") == {}
    assert counters.as_dict() == OpCounters().as_dict()
    assert backend.stats.levels == []


@needs_numpy
def test_popcount_lut_fallback_matches_bitwise_count(monkeypatch):
    """Old numpys lack ``bitwise_count``; the byte-LUT fallback must be
    bit-identical to both it and the Python reference."""
    import numpy as np

    from repro.mining import bitmap as bitmap_mod

    rng = np.random.default_rng(7)
    words = rng.integers(0, 2**64, size=(5, 9), dtype=np.uint64)
    reference = [
        [int(w).bit_count() for w in row] for row in words.tolist()
    ]
    assert bitmap_mod.popcount_words(words).tolist() == reference
    monkeypatch.delattr(np, "bitwise_count", raising=False)
    assert bitmap_mod.popcount_words(words).tolist() == reference


@needs_numpy
def test_gram_kernel_without_scipy_ssyrk(monkeypatch):
    """The plain ``sub @ sub.T`` fallback (no scipy) matches the oracle."""
    import numpy as np

    from repro.mining import bitmap as bitmap_mod

    monkeypatch.setattr(bitmap_mod, "_ssyrk", None)
    transactions = [(1, 2), (1, 3), (2, 3), (1, 2, 3)] * 20
    pairs = [(1, 2), (1, 3), (2, 3)] * 8  # dense enough for the gate
    bitmap = build_bitmap(transactions, use_numpy=True)
    flat = np.asarray([i for c in pairs for i in c], dtype=np.int64)
    rows = bitmap_mod._translate_rows(bitmap, flat)
    counts = bitmap_mod._try_pairs_gemm(bitmap, rows, len(pairs))
    assert counts is not None
    oracle = set_oracle(transactions, pairs)
    assert all(
        count == oracle[pair] for pair, count in zip(pairs, counts.tolist())
    )


@needs_numpy
def test_gram_kernel_respects_expansion_memory_cap(monkeypatch):
    """With the bit-expansion budget forced to zero the Gram kernel
    declines and the gather kernel answers — identically."""
    from repro.mining import bitmap as bitmap_mod

    monkeypatch.setattr(bitmap_mod, "_GEMM_MAX_EXPANDED_BYTES", 0)
    transactions = [(1, 2), (1, 3), (2, 3)] * 30
    pairs = [(1, 2), (1, 3), (2, 3)] * 8
    bitmap = build_bitmap(transactions, use_numpy=True)
    support = count_with_bitmap(bitmap, pairs)
    assert support == set_oracle(transactions, pairs)
    assert bitmap.bits_f32 is None  # the expansion was never built


def test_int_kernel_backend_end_to_end():
    """``use_numpy=False`` swaps in the big-int kernel behind the same
    backend facade, stats label included."""
    backend = BitmapBackend(use_numpy=False)
    assert backend.stats.kernel == "int"
    transactions = [(1, 2, 3), (1, 2), (3,)] * 5
    candidates = [(1, 2), (1, 3), (2, 3)]
    counters = OpCounters()
    support = backend.count(transactions, candidates, 2, counters, "S")
    assert support == set_oracle(transactions, candidates)
    assert counters.subset_tests == bitmap_probe_cost(
        candidates, len(transactions)
    )


def test_backend_constructor_validation():
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError, match="max_cached_matrices"):
        BitmapBackend(max_cached_matrices=0)
    with pytest.raises(ExecutionError, match="chunk_candidates"):
        BitmapBackend(chunk_candidates=0)


def test_matrix_cache_evicts_fifo_beyond_capacity():
    """A 1-slot cache rebuilds when a second dataset displaces the
    first — correctness is unchanged, only ``builds`` moves."""
    backend = BitmapBackend(max_cached_matrices=1)
    db_a = [(1, 2)] * 3
    db_b = [(2, 3)] * 3
    assert backend.count(db_a, [(1, 2)], 2) == {(1, 2): 3}
    assert backend.count(db_b, [(2, 3)], 2) == {(2, 3): 3}
    assert backend.count(db_a, [(1, 2)], 2) == {(1, 2): 3}
    assert backend.builds == 3  # A, B, then A again after eviction
    assert backend.stats.cache_hits == 0


def test_backend_shares_one_build_across_equal_content_lists():
    """The content-digest cache: two distinct list objects with equal
    content pack ONE matrix (the VerticalBackend TID-cache contract)."""
    backend = BitmapBackend()
    first = [(1, 2), (2, 3)]
    second = [(1, 2), (2, 3)]
    assert first is not second
    a = backend.count(first, [(1, 2)], 2)
    b = backend.count(second, [(1, 2)], 2)
    assert a == b == {(1, 2): 1}
    assert backend.stats.builds == 1
    assert backend.stats.cache_hits == 1


# ----------------------------------------------------------------------
# Degenerate datasets through the guard and checkpoint run paths
# ----------------------------------------------------------------------
def test_guarded_bitmap_mine_on_degenerate_databases():
    """An armed (but generous) guard over the bitmap backend changes
    nothing, including on empty and all-empty-transaction databases."""
    cases = [
        ([], []),
        ([()] * 5, []),
        ([(1,)], [1]),
        ([(1, 2), (1, 2), (2, 3), ()], [1, 2, 3]),
    ]
    for transactions, universe in cases:
        guard = RunGuard(deadline_seconds=300.0, max_candidates=10**6)
        result = mine_frequent(
            transactions,
            universe,
            1,
            backend=BitmapBackend(),
            guard=guard,
        )
        reference = mine_frequent(
            transactions, universe, 1, backend=HybridBackend()
        )
        assert result.all_sets() == reference.all_sets()


def test_guard_trip_with_bitmap_backend_yields_partial_result():
    """A tripped candidate budget unwinds a bitmap-backed optimizer run
    into the same partial-result packaging the hybrid path gets."""
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=120, seed=5)
    cfq = workload.cfq()
    result = CFQOptimizer(cfq).execute(
        workload.db,
        backend=BitmapBackend(),
        guard=RunGuard(max_candidates=1),
    )
    assert result.status == "partial"
    assert result.interruption is not None
    assert result.interruption.reason == "candidates"


def test_checkpoint_resume_with_bitmap_backend_is_bit_identical(tmp_path):
    """Interrupt a bitmap-backed run at a level boundary, resume it with
    the bitmap backend: answers AND full counters match an
    uninterrupted bitmap run (the resume-differential contract holds
    per backend, not just for hybrid)."""
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    class TripAfterLevels(RunGuard):
        def __init__(self, n_levels):
            super().__init__()
            self.remaining = n_levels

        def level_completed(self, var, level):
            super().level_completed(var, level)
            self.remaining -= 1
            if self.remaining <= 0:
                self.request_cancel("cancelled", "test interruption")
                self.check("level")

    workload = quickstart_workload(n_transactions=150, seed=2)
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(
        workload.db, backend=BitmapBackend()
    )
    interrupted = CFQOptimizer(cfq).execute(
        workload.db,
        backend=BitmapBackend(),
        guard=TripAfterLevels(2),
        checkpoint_dir=str(tmp_path),
    )
    assert interrupted.status == "partial"
    resumed = CFQOptimizer(cfq).execute(
        workload.db,
        backend=BitmapBackend(),
        checkpoint_dir=str(tmp_path),
        resume=True,
    )
    assert resumed.status == "complete"
    for var in cfq.variables:
        assert resumed.frequent_valid(var) == baseline.frequent_valid(var)
    assert resumed.pairs() == baseline.pairs()
    assert resumed.raw.bound_histories == baseline.raw.bound_histories
    assert resumed.counters.as_dict() == baseline.counters.as_dict()


# ----------------------------------------------------------------------
# Incremental updates: masking + row appends instead of repacking
# ----------------------------------------------------------------------
DELETE_PICKS = st.lists(st.integers(min_value=0, max_value=10**6), max_size=8)


@SETTINGS
@given(
    transactions=TRANSACTIONS,
    added=st.lists(TRANSACTION, max_size=10),
    picks=DELETE_PICKS,
    candidates=CANDIDATES,
)
def test_update_bitmap_counts_like_a_fresh_build(
    transactions, added, picks, candidates
):
    """``update_bitmap(base, added, removed)`` answers every candidate
    exactly like packing the mutated list cold, in both representations
    — deletions only zero bit columns, yet no phantom support survives."""
    removed_tids = sorted({p % len(transactions) for p in picks}) \
        if transactions else []
    survivors = [
        t for tid, t in enumerate(transactions) if tid not in set(removed_tids)
    ]
    mutated = survivors + added
    for use_numpy in representations():
        base = build_bitmap(transactions, use_numpy=use_numpy)
        updated = update_bitmap(base, added, removed_tids)
        assert updated.n_transactions == len(mutated), use_numpy
        fresh = build_bitmap(mutated, use_numpy=use_numpy)
        got = count_with_bitmap(updated, candidates)
        assert got == count_with_bitmap(fresh, candidates), use_numpy
        assert got == set_oracle(mutated, candidates), use_numpy
        # Copy-on-write: the base still answers for the base list.
        assert count_with_bitmap(base, candidates) == set_oracle(
            transactions, candidates
        ), use_numpy


@SETTINGS
@given(
    transactions=st.lists(TRANSACTION, min_size=4, max_size=40),
    added1=st.lists(TRANSACTION, max_size=6),
    picks=DELETE_PICKS,
    added2=st.lists(TRANSACTION, max_size=6),
    candidates=CANDIDATES,
)
def test_update_bitmap_chains_through_mixed_churn(
    transactions, added1, picks, added2, candidates
):
    """Delta-of-a-delta: the logical→physical TID map keeps a second
    update sound after deletions shifted every logical TID."""
    step1 = list(transactions) + list(added1)
    removed_tids = sorted({p % len(step1) for p in picks})
    step2 = [t for tid, t in enumerate(step1) if tid not in set(removed_tids)]
    step3 = step2 + list(added2)
    for use_numpy in representations():
        bitmap = build_bitmap(transactions, use_numpy=use_numpy)
        bitmap = update_bitmap(bitmap, added1)
        bitmap = update_bitmap(bitmap, [], removed_tids)
        bitmap = update_bitmap(bitmap, added2)
        assert bitmap.n_transactions == len(step3), use_numpy
        assert count_with_bitmap(bitmap, candidates) == set_oracle(
            step3, candidates
        ), use_numpy


def test_update_bitmap_rejects_out_of_range_tids():
    bitmap = build_bitmap([(1, 2), (2, 3)], use_numpy=False)
    with pytest.raises(ExecutionError):
        update_bitmap(bitmap, [], [2])
    with pytest.raises(ExecutionError):
        update_bitmap(bitmap, [], [-1])


def test_backend_apply_delta_seeds_the_cache_for_the_new_content():
    """After ``apply_delta`` the mutated list's counts are served from a
    derived matrix — no repack — and match a cold backend bit for bit."""
    db = TransactionDatabase([[1, 2, 3], [2, 3], [1, 4], [3, 4]])
    backend = BitmapBackend()
    candidates = [(1, 2), (2, 3), (3, 4)]
    backend.count(list(db.transactions), candidates, 2)
    assert backend.stats.builds == 1

    new_db, delta = db.append([[1, 2], [2, 3, 4]])
    assert backend.apply_delta(list(new_db.transactions), delta) is True
    assert backend.delta_updates == 1
    warm = backend.count(list(new_db.transactions), candidates, 2)
    assert backend.stats.builds == 1  # derived, not repacked

    cold = BitmapBackend().count(list(new_db.transactions), candidates, 2)
    assert list(warm.items()) == list(cold.items())


def test_backend_apply_delta_declines_when_base_was_never_built():
    db = TransactionDatabase([[1, 2], [2, 3]])
    new_db, delta = db.delete([0])
    backend = BitmapBackend()
    assert backend.apply_delta(list(new_db.transactions), delta) is False
    # Declining is harmless: the next count packs cold and is correct.
    assert backend.count(list(new_db.transactions), [(2, 3)], 2) == {(2, 3): 1}
