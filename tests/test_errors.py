"""The exception hierarchy and error ergonomics."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConstraintSyntaxError",
        "ConstraintTypeError",
        "QueryValidationError",
        "ClassificationError",
        "ExecutionError",
        "DataError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_syntax_error_renders_caret():
    err = errors.ConstraintSyntaxError("boom", "abc def", 4)
    message = str(err)
    assert "abc def" in message
    lines = message.splitlines()
    assert lines[-1].index("^") == 2 + 4  # two-space indent + position


def test_syntax_error_without_context():
    err = errors.ConstraintSyntaxError("boom")
    assert str(err) == "boom"
    assert err.position == -1


def test_library_raises_only_repro_errors_on_bad_input():
    from repro import CFQ, Domain, ItemCatalog, parse_constraint

    with pytest.raises(errors.ReproError):
        parse_constraint("max(S.Price <= 5")
    with pytest.raises(errors.ReproError):
        ItemCatalog({})
    catalog = ItemCatalog({"A": {1: 1}})
    with pytest.raises(errors.ReproError):
        CFQ(domains={"S": Domain.items(catalog)}, minsup=0.1,
            constraints=["max(Q.A) <= 1"])
