"""Metamorphic properties of the serving layer.

Each property relates *answers* of different servings without knowing
the true answer — the relations hold for the paper's semantics, so any
violation convicts the cache, not the workload:

* lowering minsup only grows the answer set;
* adding an anti-monotone 1-variable constraint never adds answers;
* a batch of one query is equivalent to a single ``execute``;
* an answer recomputed after LRU eviction or TTL expiry equals the
  original cold answer (a cache entry leaving must look like it was
  never there).

The servings deliberately share one :class:`QueryService` across
hypothesis examples, so the properties are exercised against every mix
of cold runs, result-cache hits, and skeleton-served executions the
sampling produces — a stale or mis-keyed entry anywhere breaks the
relation for some later example.
"""

from functools import lru_cache

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.serve import QueryService

WORKLOAD = quickstart_workload(n_transactions=200)

MINSUPS = (0.02, 0.03, 0.05, 0.08)
#: Anti-monotone 1-variable constraints (count and max-bounded price are
#: both AM: supersets can only violate them more).
AM_CONSTRAINTS = (
    "count(S) <= 2",
    "count(S) <= 3",
    "max(S.Price) <= 120",
    "max(S.Price) <= 60",
)
CONSTRAINT_SETS = (
    tuple(WORKLOAD.constraints),
    tuple(WORKLOAD.constraints[:2]),
    ("S.Type = {snacks, dairy}", "T.Type = {beers}",
     "max(S.Price) <= min(T.Price)"),
)


def _cfq(minsup, constraints):
    return WORKLOAD.cfq(constraints=list(constraints), minsup=minsup)


def _answer(result):
    """The comparable answer: frequent valid sets (with order), pairs."""
    return {
        "frequent_valid": {
            var: list(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": result.pairs(limit=None),
    }


@lru_cache(maxsize=None)
def _cold_answer(minsup, constraints):
    result = CFQOptimizer(_cfq(minsup, constraints)).execute(WORKLOAD.db)
    frozen = _answer(result)
    return frozen


SHARED_SERVICE = QueryService(max_entries=8, max_skeletons=4)


def _serve(minsup, constraints, batch):
    cfq = _cfq(minsup, constraints)
    if batch:
        report = SHARED_SERVICE.execute_batch(WORKLOAD.db, [cfq])
        (item,) = report.items
        note(f"served source={item.source} minsup={minsup}")
        return item.result
    result = SHARED_SERVICE.execute(WORKLOAD.db, cfq)
    info = result.cache_info or {}
    note(f"served source={info.get('source', 'cold')} minsup={minsup}")
    return result


@settings(max_examples=12, deadline=None)
@given(
    low=st.sampled_from(MINSUPS),
    high=st.sampled_from(MINSUPS),
    constraints=st.sampled_from(CONSTRAINT_SETS),
    batch=st.booleans(),
)
def test_lowering_minsup_only_grows_answers(low, high, constraints, batch):
    if low > high:
        low, high = high, low
    loose = _serve(low, constraints, batch)
    tight = _serve(high, constraints, batch)
    for var in ("S", "T"):
        loose_sets = set(loose.frequent_valid(var))
        tight_sets = set(tight.frequent_valid(var))
        note(f"{var}: {len(tight_sets)} sets at {high}, "
             f"{len(loose_sets)} at {low}")
        assert tight_sets <= loose_sets
    assert set(tight.pairs(limit=None)) <= set(loose.pairs(limit=None))
    # And every serving, whatever tier answered it, equals its cold run.
    assert _answer(loose) == _cold_answer(low, constraints)
    assert _answer(tight) == _cold_answer(high, constraints)


@settings(max_examples=12, deadline=None)
@given(
    minsup=st.sampled_from(MINSUPS[:2]),
    extra=st.sampled_from(AM_CONSTRAINTS),
    batch=st.booleans(),
)
def test_adding_anti_monotone_constraint_never_adds_answers(
    minsup, extra, batch
):
    base = tuple(WORKLOAD.constraints)
    constrained = base + (extra,)
    unconstrained = _serve(minsup, base, batch)
    restricted = _serve(minsup, constrained, batch)
    note(f"extra constraint: {extra}")
    assert set(restricted.pairs(limit=None)) <= set(
        unconstrained.pairs(limit=None)
    )
    assert set(restricted.frequent_valid("S")) <= set(
        unconstrained.frequent_valid("S")
    )
    assert _answer(restricted) == _cold_answer(minsup, constrained)


@settings(max_examples=8, deadline=None)
@given(
    minsup=st.sampled_from(MINSUPS),
    constraints=st.sampled_from(CONSTRAINT_SETS),
)
def test_batch_of_one_equals_single_execute(minsup, constraints):
    cfq_single = _cfq(minsup, constraints)
    single_service = QueryService()
    single = single_service.execute(WORKLOAD.db, cfq_single)

    batch_service = QueryService()
    report = batch_service.execute_batch(WORKLOAD.db, [_cfq(minsup, constraints)])
    (item,) = report.items
    note(f"single source={(single.cache_info or {}).get('source')}, "
         f"batch source={item.source}")
    assert _answer(single) == _answer(item.result)
    assert _answer(single) == _cold_answer(minsup, constraints)
    assert report.dataset_fingerprint
    assert report.failed_domains == []


def test_eviction_then_requery_equals_cold_run():
    """An entry evicted by LRU pressure must leave no trace: requerying
    gives exactly the original (cold) answer via a fresh cold run."""
    service = QueryService(max_entries=1)
    first = _cfq(0.02, tuple(WORKLOAD.constraints))
    second = _cfq(0.05, tuple(WORKLOAD.constraints))
    original = service.execute(WORKLOAD.db, first)
    service.execute(WORKLOAD.db, second)  # evicts `first`
    assert service.stats.evictions >= 1
    requeried = service.execute(WORKLOAD.db, first)
    assert (requeried.cache_info or {}).get("source") == "cold"
    assert _answer(requeried) == _answer(original)
    assert requeried.counters.as_dict() == original.counters.as_dict()


def test_ttl_expiry_then_requery_equals_cold_run():
    """TTL expiry ≡ cold run, driven by a fake clock."""

    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    service = QueryService(ttl_seconds=30, clock=clock)
    cfq = _cfq(0.02, tuple(WORKLOAD.constraints))
    original = service.execute(WORKLOAD.db, cfq)
    clock.now = 29.0
    warm = service.execute(WORKLOAD.db, cfq)
    assert (warm.cache_info or {}).get("source") == "result-cache"
    clock.now = 31.0
    expired = service.execute(WORKLOAD.db, cfq)
    assert (expired.cache_info or {}).get("source") == "cold"
    assert service.stats.expirations >= 1
    assert _answer(expired) == _answer(original)
    assert expired.counters.as_dict() == original.counters.as_dict()
