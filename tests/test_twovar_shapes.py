"""Normalization and orientation of 2-var constraint shapes."""

import pytest

from repro.constraints.ast import CmpOp, SetOp
from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import AggAggShape, SetSetShape, TwoVarView
from repro.errors import ConstraintTypeError


def view(text) -> TwoVarView:
    return TwoVarView.of(parse_constraint(text))


def test_agg_agg_shape_extraction():
    shape = view("max(S.A) <= min(T.B)").shape
    assert isinstance(shape, AggAggShape)
    assert (shape.left_func, shape.right_func) == ("max", "min")
    assert shape.left_var == "S" and shape.right_var == "T"
    assert shape.op is CmpOp.LE


def test_set_set_shape_extraction():
    shape = view("S.A ∩ T.B = ∅").shape
    assert isinstance(shape, SetSetShape)
    assert shape.op is SetOp.DISJOINT


def test_orientation_flips_operator():
    shape = view("max(S.A) <= min(T.B)").shape
    oriented = shape.oriented("T")
    assert oriented.left_var == "T"
    assert oriented.op is CmpOp.GE
    assert (oriented.left_func, oriented.right_func) == ("min", "max")
    # Orienting back is the identity.
    assert oriented.oriented("S") == shape


def test_orientation_flips_set_op():
    shape = view("S.A ⊆ T.B").shape
    oriented = shape.oriented("T")
    assert oriented.op is SetOp.SUPERSET
    assert oriented.left_attr == "B"


def test_orientation_rejects_foreign_variable():
    shape = view("S.A ⊆ T.B").shape
    with pytest.raises(ConstraintTypeError):
        shape.oriented("X")


def test_min_max_only_and_uses_sum_or_avg():
    assert view("max(S.A) <= min(T.B)").shape.min_max_only
    assert not view("sum(S.A) <= min(T.B)").shape.min_max_only
    assert view("sum(S.A) <= min(T.B)").shape.uses_sum_or_avg
    assert view("avg(S.A) >= avg(T.B)").shape.uses_sum_or_avg
    assert not view("max(S.A) <= min(T.B)").shape.uses_sum_or_avg


def test_same_variable_agg_comparison_has_no_shape():
    constraint = parse_constraint("min(S.A) <= max(T.B)")
    assert TwoVarView.of(constraint).shape is not None
    # A genuinely opaque case: a set comparison whose sides mix const/attr
    # in an unrecognized way cannot arise from the parser, so exercise via
    # the variables guard instead.
    with pytest.raises(ConstraintTypeError):
        TwoVarView.of(parse_constraint("max(S.A) <= 5"))


def test_bare_variable_shape():
    shape = view("S.Type ⊆ T").shape
    assert shape.left_attr == "Type"
    assert shape.right_attr is None
