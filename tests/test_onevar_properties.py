"""The 1-var property table (Lemma 1 and the CAP classification),
plus empirical spot checks of anti-monotonicity/monotonicity.
"""

from itertools import combinations

import pytest

from repro.constraints.evaluate import evaluate_constraint
from repro.constraints.onevar import AggConstShape, OneVarView, SetConstShape
from repro.constraints.parser import parse_constraint
from repro.constraints.properties import classify_onevar
from repro.db.domain import Domain


CASES = [
    # text, anti_monotone, monotone, succinct, needs_non_negative
    ("S.Type ⊆ {a, b}", True, False, True, False),
    ("S.Type ⊇ {a}", False, True, True, False),
    ("S.Type = {a}", False, False, True, False),
    ("S.Type != {a}", False, False, False, False),
    ("S.Type ∩ {a} = ∅", True, False, True, False),
    ("S.Type ∩ {a} != ∅", False, True, True, False),
    ("S.Type ⊄ {a}", False, True, True, False),
    ("S.Type ⊉ {a}", True, False, True, False),
    ("min(S.A) >= 5", True, False, True, False),
    ("min(S.A) > 5", True, False, True, False),
    ("min(S.A) <= 5", False, True, True, False),
    ("min(S.A) = 5", False, False, True, False),
    ("max(S.A) <= 5", True, False, True, False),
    ("max(S.A) >= 5", False, True, True, False),
    ("max(S.A) = 5", False, False, True, False),
    ("count(S) <= 3", True, False, False, False),
    ("count(S.A) >= 3", False, True, False, False),
    ("count(S.A) = 3", False, False, False, False),
    ("sum(S.A) <= 5", True, False, False, True),
    ("sum(S.A) >= 5", False, True, False, True),
    ("avg(S.A) <= 5", False, False, False, False),
    ("avg(S.A) >= 5", False, False, False, False),
]


@pytest.mark.parametrize("text, am, mono, succinct, needs_nn", CASES)
def test_classification_table(text, am, mono, succinct, needs_nn):
    view = OneVarView.of(parse_constraint(text))
    props = classify_onevar(view, non_negative=True)
    assert props.anti_monotone is am, text
    assert props.monotone is mono, text
    assert props.succinct is succinct, text
    if needs_nn:
        pessimistic = classify_onevar(view, non_negative=False)
        assert pessimistic.none_apply, f"{text} without non-negativity"


def test_shape_extraction_normalizes_constant_side():
    view = OneVarView.of(parse_constraint("5 >= sum(S.A)"))
    assert isinstance(view.shape, AggConstShape)
    assert view.shape.func == "sum"
    assert view.shape.op.value == "<="
    view2 = OneVarView.of(parse_constraint("{a} ⊆ S.Type"))
    assert isinstance(view2.shape, SetConstShape)
    assert view2.shape.op.value == "superset"


def test_unrecognized_shape_is_none():
    view = OneVarView.of(parse_constraint("min(S.A) <= max(S.A)"))
    assert view.shape is None
    assert classify_onevar(view).none_apply


def test_onevar_view_rejects_twovar():
    from repro.errors import ConstraintTypeError

    with pytest.raises(ConstraintTypeError):
        OneVarView.of(parse_constraint("max(S.A) <= min(T.B)"))


@pytest.mark.parametrize("text, am, mono, succinct, needs_nn", CASES)
def test_classification_matches_empirical_monotonicity(
    text, am, mono, succinct, needs_nn
):
    """Exhaustively verify AM/monotone verdicts on a small concrete domain.

    Anti-monotone: satisfaction closed under subsets; monotone:
    satisfaction closed under supersets.  The claimed properties must
    hold; no claim is made (or checked) in the 'no' direction because a
    specific dataset may coincidentally be closed.
    """
    from repro.db.catalog import ItemCatalog

    catalog = ItemCatalog(
        {
            "A": {1: 2, 2: 4, 3: 5, 4: 7},
            "Type": {1: "a", 2: "b", 3: "a", 4: "c"},
        }
    )
    domain = Domain.items(catalog)
    constraint = parse_constraint(text)
    universe = domain.elements
    satisfied = {}
    for k in range(1, len(universe) + 1):
        for combo in combinations(universe, k):
            satisfied[combo] = evaluate_constraint(
                constraint, {"S": combo}, {"S": domain}
            )
    for itemset, ok in satisfied.items():
        if not ok:
            continue
        if am:
            for sub in combinations(itemset, len(itemset) - 1):
                if sub:
                    assert satisfied[sub], (text, itemset, sub)
        if mono:
            for extra in universe:
                if extra not in itemset:
                    superset = tuple(sorted(itemset + (extra,)))
                    assert satisfied[superset], (text, itemset, superset)
