"""A tour of the Figure 7 query optimizer.

For a query mixing every constraint class — succinct 1-var, quasi-
succinct 2-var, and a non-quasi-succinct sum constraint — this example
shows how each constraint is classified (Figure 1), what the plan pushes
where, and what the ccc audit (Definition 6) says about the run.

Also demonstrates a derived domain: T ranging over the *Type* domain
rather than items, with the 2-var constraint ``S.Type ⊆ T``.

Run with:  python examples/optimizer_explain.py
"""

from repro import (
    CFQ,
    CFQOptimizer,
    TwoVarView,
    audit_ccc,
    classify_twovar,
    derived_type_domain,
    parse_constraint,
)
from repro.datagen import quickstart_workload


def classification_tour() -> None:
    print("--- Figure 1 classification of 2-var constraints ---")
    for text in (
        "S.Type ∩ T.Type = ∅",
        "S.Type = T.Type",
        "max(S.Price) <= min(T.Price)",
        "min(S.Price) <= max(T.Price)",
        "sum(S.Price) <= sum(T.Price)",
        "avg(S.Price) <= avg(T.Price)",
    ):
        view = TwoVarView.of(parse_constraint(text))
        props = classify_twovar(view)
        print(f"  {text:<32} anti-monotone={props.anti_monotone!s:<5} "
              f"quasi-succinct={props.quasi_succinct}")


def plan_tour() -> None:
    workload = quickstart_workload()
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.02,
        constraints=[
            "max(S.Price) <= 120",            # 1-var succinct + anti-monotone
            "min(T.Price) >= 40",             # 1-var succinct + anti-monotone
            "S.Type ∩ T.Type = ∅",            # 2-var quasi-succinct
            "sum(S.Price) <= sum(T.Price)",   # 2-var non-quasi-succinct
        ],
    )
    print("\n--- plan for a mixed query ---")
    print(f"query: {cfq}")
    optimizer = CFQOptimizer(cfq)
    result = optimizer.execute(workload.db)
    print(result.explain())
    print(f"valid pairs: {len(result.pairs())}")


def audit_tour() -> None:
    workload = quickstart_workload(n_transactions=400)
    cfq = workload.cfq()
    print("\n--- ccc audit (Definition 6) on the quickstart query ---")
    __, report = audit_ccc(workload.db, cfq)
    print(report.describe())


def derived_domain_tour() -> None:
    workload = quickstart_workload()
    type_domain = derived_type_domain(workload.catalog)
    cfq = CFQ(
        domains={"S": workload.domains["S"], "T": type_domain},
        minsup={"S": 0.02, "T": 0.05},
        constraints=["S.Type ⊆ T"],
    )
    print("\n--- derived domain: T ranges over Types ---")
    print(f"query: {cfq}  (T elements: {len(type_domain)} types)")
    result = CFQOptimizer(cfq).execute(workload.db)
    pairs = result.pairs(limit=5)
    for s0, t0 in pairs:
        type_names = sorted(type_domain.element_values(t0))
        print(f"  S={s0} (types {sorted(workload.catalog.project_set(s0, 'Type'))}) "
              f"within T={type_names}")


def main() -> None:
    classification_tour()
    plan_tour()
    audit_tour()
    derived_domain_tour()


if __name__ == "__main__":
    main()
