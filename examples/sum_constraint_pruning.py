"""Watching the Section 5.2 iterative pruning work.

``sum(S.Price) <= sum(T.Price)`` is the paper's hardest constraint: not
anti-monotone, not quasi-succinct, and Figure 4 induces nothing useful
when the greater side is a sum.  The optimizer instead runs the
``J^k_max`` machinery: after each level k of the T lattice it derives a
bound ``W^k`` on the largest achievable ``sum(T.Price)`` and prunes every
candidate S-set whose price sum already exceeds it.

This example prints the shrinking bound series and how the S lattice's
candidate counts collapse compared to Apriori+.

Run with:  python examples/sum_constraint_pruning.py
"""

from repro import apriori_plus, mine_cfq
from repro.datagen import jmax_workload


def main() -> None:
    for t_mean in (400.0, 800.0):
        workload = jmax_workload(t_mean)
        cfq = workload.cfq()
        print(f"=== T prices ~ Normal({t_mean:g}, 100); S ~ Normal(1000, 100) ===")
        print(f"query: {cfq}")

        optimized = mine_cfq(workload.db, cfq)
        baseline = apriori_plus(workload.db, cfq)

        for key, history in optimized.raw.bound_histories.items():
            rendered = "  ".join(f"W^{k}={bound:,.0f}" for k, bound in history)
            print(f"bound series on {key}: {rendered}")

        opt_counted = optimized.raw.result_for("S").counted_per_level
        base_counted = baseline.lattices["S"].counted_per_level
        print("S-side candidates counted per level (optimizer vs Apriori+):")
        for level in sorted(base_counted):
            print(f"  level {level}: {opt_counted.get(level, 0):>5} vs "
                  f"{base_counted[level]:>5}")

        speedup = baseline.counters.cost() / optimized.counters.cost()
        agree = set(optimized.pairs()) == set(baseline.pairs())
        print(f"cost speedup: {speedup:.2f}x; answers agree: {agree}\n")


if __name__ == "__main__":
    main()
