"""Regenerate every table and figure of the paper's Section 7.

This drives the same experiment functions the benchmark suite uses and
prints each reproduced table next to the paper's reported numbers.
Expect a few minutes of runtime at full scale; pass ``--smoke`` for a
fast, smaller-data pass.

Run with:  python examples/paper_experiments.py [--smoke]
"""

import sys

from repro.bench.experiments import (
    ablation_table,
    backend_table,
    ccc_experiment,
    fig8a_level_table,
    fig8a_range_table,
    fig8a_speedups,
    fig8b_range_table,
    fig8b_speedups,
    jmax_table,
)


def main() -> None:
    scale = "smoke" if "--smoke" in sys.argv else "full"
    experiments = (
        fig8a_speedups,
        fig8a_level_table,
        fig8a_range_table,
        fig8b_speedups,
        fig8b_range_table,
        jmax_table,
        ccc_experiment,
        ablation_table,
        backend_table,
    )
    for experiment in experiments:
        print(experiment(scale=scale).render())
        print()


if __name__ == "__main__":
    main()
