"""Bringing your own data: CSV-ish rows in, constrained rules out.

The other examples use generated workloads; this one shows the full
adoption path for real data: build the itemInfo catalog from records,
build the transaction database from baskets, pose a query in the paper's
notation, and read the plan, pairs and rules.

Run with:  python examples/custom_data.py
"""

from repro import Domain, ItemCatalog, TransactionDatabase
from repro.core.cfq_parser import parse_cfq
from repro.core.optimizer import CFQOptimizer

# --- your item master data (item_id, type, price) ----------------------
ITEM_ROWS = [
    (1, "chips", 2.5), (2, "chips", 3.0), (3, "salsa", 4.0),
    (4, "beer", 9.0), (5, "beer", 12.0), (6, "beer", 15.0),
    (7, "wine", 18.0), (8, "wine", 25.0), (9, "soda", 2.0),
    (10, "pretzels", 3.5),
]

# --- your baskets -------------------------------------------------------
BASKETS = [
    [1, 3, 4], [1, 2, 4], [2, 3, 5], [1, 4, 9], [2, 5, 10],
    [1, 2, 3, 4], [3, 5, 7], [1, 4, 5], [2, 4, 10], [1, 3, 5],
    [6, 7, 8], [1, 2, 4, 5], [3, 4, 10], [1, 5, 9], [2, 3, 4],
    [1, 2, 10], [4, 5, 6], [1, 3, 4, 5], [2, 4, 9], [1, 2, 3],
]


def main() -> None:
    catalog = ItemCatalog(
        {
            "Type": {item: t for item, t, _p in ITEM_ROWS},
            "Price": {item: p for item, _t, p in ITEM_ROWS},
        }
    )
    db = TransactionDatabase(BASKETS)
    item = Domain.items(catalog)

    cfq = parse_cfq(
        "{(S, T) | freq(S, 0.15) & freq(T, 0.15)"
        " & max(S.Price) <= 5"
        " & min(T.Price) >= 8"
        " & S.Type ∩ T.Type = ∅"
        " & max(S.Price) <= min(T.Price)}",
        domains={"S": item, "T": item},
    )
    print(f"query: {cfq}\n")

    result = CFQOptimizer(cfq).execute(db)
    print(result.explain())

    print("\ncheap-snack => pricey-drink pairs:")
    for s0, t0 in result.pairs(limit=8):
        s_names = [catalog.value(i, "Type") for i in s0]
        t_names = [catalog.value(i, "Type") for i in t0]
        print(f"  {s0} {s_names}  ->  {t0} {t_names}")

    print("\nrules with confidence >= 0.5:")
    for rule in result.rules(db, min_confidence=0.5)[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
