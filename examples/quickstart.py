"""Quickstart: pose a constrained frequent set query and read the answer.

The running example of the paper's Section 2: find pairs of frequent
itemsets where S contains only snack items, T contains only beer items,
and every snack in S is cheaper than every beer in T —

    {(S, T) | S.Type = {snacks} & T.Type = {beers}
              & max(S.Price) <= min(T.Price)}

Run with:  python examples/quickstart.py
"""

from repro import CFQ, mine_cfq
from repro.datagen import quickstart_workload


def main() -> None:
    workload = quickstart_workload()
    print(f"transaction database: {workload.db!r}")
    print(f"catalog attributes:   {workload.catalog.attribute_names}")

    cfq = CFQ(
        domains=workload.domains,
        minsup=0.02,
        constraints=[
            "S.Type = {snacks}",
            "T.Type = {beers}",
            "max(S.Price) <= min(T.Price)",
        ],
    )
    print(f"\nquery: {cfq}")

    result = mine_cfq(workload.db, cfq)
    for var in cfq.variables:
        sets = result.frequent_valid(var)
        print(f"\nfrequent valid {var}-sets: {len(sets)}")
        for itemset, support in sorted(sets.items())[:5]:
            prices = workload.catalog.project(itemset, "Price")
            print(f"  {itemset}  support={support}  prices={prices}")

    pairs = result.pairs(limit=10)
    print(f"\nfirst {len(pairs)} valid (S, T) pairs:")
    for s0, t0 in pairs[:5]:
        print(f"  S={s0}  T={t0}")

    rules = result.rules(workload.db, min_confidence=0.3)
    print(f"\nphase-2 rules with confidence >= 0.3: {len(rules)}")
    for rule in rules[:5]:
        print(f"  {rule}")

    print("\n--- how the optimizer ran this query ---")
    print(result.explain())


if __name__ == "__main__":
    main()
