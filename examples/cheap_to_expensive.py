"""The introduction's motivating CFQ: cheap antecedents, expensive
consequents.

    {(S, T) | sum(S.Price) <= 100 & avg(T.Price) >= 120}

"such pairs may be used to compute rules of the form S => T, suggesting
that the purchase of cheaper items leads to the purchase of more
expensive ones."  This exercises two hard 1-var constraint classes:
``sum <= c`` (anti-monotone, not succinct) and ``avg >= c`` (neither —
pushed via its implied max-bound bucket plus a final check).

Run with:  python examples/cheap_to_expensive.py
"""

from repro import CFQ, OpCounters, apriori_plus, mine_cfq
from repro.datagen import quickstart_workload


def main() -> None:
    workload = quickstart_workload()
    cfq = CFQ(
        domains=workload.domains,
        minsup=0.02,
        constraints=[
            "sum(S.Price) <= 100",
            "avg(T.Price) >= 120",
        ],
    )
    print(f"query: {cfq}\n")

    optimized = mine_cfq(workload.db, cfq)
    baseline = apriori_plus(workload.db, cfq)

    print("strategy comparison (same answers, different work):")
    print(f"  optimizer: cost {optimized.counters.cost():>12.0f}, "
          f"sets counted {optimized.counters.total_counted}")
    print(f"  apriori+ : cost {baseline.counters.cost():>12.0f}, "
          f"sets counted {baseline.counters.total_counted}")

    opt_pairs = set(optimized.pairs())
    base_pairs = set(baseline.pairs())
    assert opt_pairs == base_pairs, "strategies must agree"
    print(f"\nvalid (S, T) pairs: {len(opt_pairs)} (strategies agree)")

    rules = optimized.rules(workload.db, min_confidence=0.25)
    print(f"cheap => expensive rules with confidence >= 0.25: {len(rules)}")
    for rule in sorted(rules, key=lambda r: -r.confidence)[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
